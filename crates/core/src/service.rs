//! The end-to-end Thrifty service loop.
//!
//! [`ThriftyService`] wires all components together against the simulated
//! cluster: the Deployment Master materializes the plan, the Query Router
//! (Algorithm 1) places every incoming query, the Tenant Activity Monitor
//! tracks per-group RT-TTP, the SLA layer grades every completion against
//! the tenant's dedicated-MPPDB baseline, and — when enabled — lightweight
//! elastic scaling moves over-active tenants onto freshly loaded MPPDBs
//! (Chapter 5.1). Replaying a §7.1 multi-tenant log through this loop is
//! how the Figure 7.7 experiment is produced.

use crate::billing::{Invoice, Tariff, UsageMeter};
use crate::design::DeploymentPlan;
use crate::error::{ThriftyError, ThriftyResult};
use crate::master::DeploymentMaster;
use crate::monitor::GroupActivityMonitor;
use crate::reconsolidation::CyclePlan;
use crate::routing::{QueryRouter, Route, RouteKind};
use crate::scaling::{identify_over_active, ScalingEvent};
use crate::sla::{SlaPolicy, SlaRecord, SlaSummary};
use crate::telemetry::{InstanceUtilization, Telemetry, TelemetryConfig, TelemetryEvent};
use crate::tenant::{Tenant, TenantHistory, TenantId};
use mppdb_sim::cluster::{Cluster, ClusterConfig, QueryCompletion, SimEvent};
use mppdb_sim::error::SimError;
use mppdb_sim::failure::FailurePlan;
use mppdb_sim::instance::{InstanceId, InstanceState};
use mppdb_sim::node::NodeId;
use mppdb_sim::query::{QueryId, QuerySpec, QueryTemplate, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// RT-TTP trace sampling (for the Figure 7.7 time-series plots).
///
/// `#[non_exhaustive]`: construct via [`TraceConfig::new`] (fields stay
/// readable).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct TraceConfig {
    /// Which tenant-groups to sample.
    pub groups: Vec<usize>,
    /// Sampling interval in ms.
    pub interval_ms: u64,
}

impl TraceConfig {
    /// Samples the RT-TTP of `groups` every `interval_ms` of log time.
    pub fn new(groups: Vec<usize>, interval_ms: u64) -> Self {
        TraceConfig {
            groups,
            interval_ms,
        }
    }
}

/// Service configuration.
///
/// `#[non_exhaustive]`: construct via [`ServiceConfig::builder`] (or take
/// [`ServiceConfig::default`] as-is); fields stay readable. New knobs —
/// like [`TelemetryConfig`] in this revision — land behind the builder
/// without breaking existing callers.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// SLA evaluation policy.
    pub sla_policy: SlaPolicy,
    /// Performance SLA guarantee `P` (fraction) that triggers scaling.
    pub sla_p: f64,
    /// Whether lightweight elastic scaling is enabled.
    pub elastic_scaling: bool,
    /// RT-TTP monitoring window (paper: 24 h).
    pub monitor_window_ms: u64,
    /// Epoch size for over-active-tenant identification.
    pub scaling_epoch_ms: u64,
    /// Minimum spacing between scaling checks of the same group.
    pub scaling_check_interval_ms: u64,
    /// Optional RT-TTP trace sampling.
    pub trace: Option<TraceConfig>,
    /// Telemetry recording policy (on by default).
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            sla_policy: SlaPolicy::default(),
            sla_p: 0.999,
            elastic_scaling: true,
            monitor_window_ms: 24 * 3_600_000,
            scaling_epoch_ms: 10_000,
            scaling_check_interval_ms: 60_000,
            trace: None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A builder pre-seeded with this configuration's values — the
    /// starting point for a hot-reload candidate, which re-runs the same
    /// [`ServiceConfigBuilder::build`] validation over the edited knobs.
    pub fn to_builder(&self) -> ServiceConfigBuilder {
        ServiceConfigBuilder { cfg: self.clone() }
    }

    /// Starts a fluent builder seeded with [`ServiceConfig::default`].
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder::default()
    }
}

/// Fluent builder for [`ServiceConfig`]. Every setter has the same name
/// as the field it sets; unset fields keep their default.
/// [`build`](Self::build) validates the knobs and rejects nonsense with
/// [`ThriftyError::InvalidConfig`].
///
/// ```
/// use thrifty::prelude::*;
///
/// let config = ServiceConfig::builder()
///     .elastic_scaling(false)
///     .sla_p(0.99)
///     .telemetry(TelemetryConfig::disabled())
///     .build()
///     .expect("a valid configuration");
/// assert!(!config.elastic_scaling);
/// assert!(!config.telemetry.enabled);
/// assert!(ServiceConfig::builder().sla_p(0.0).build().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the SLA evaluation policy.
    pub fn sla_policy(mut self, policy: SlaPolicy) -> Self {
        self.cfg.sla_policy = policy;
        self
    }

    /// Sets the performance guarantee `P` (fraction).
    pub fn sla_p(mut self, p: f64) -> Self {
        self.cfg.sla_p = p;
        self
    }

    /// Enables or disables lightweight elastic scaling.
    pub fn elastic_scaling(mut self, on: bool) -> Self {
        self.cfg.elastic_scaling = on;
        self
    }

    /// Sets the RT-TTP monitoring window in ms.
    pub fn monitor_window_ms(mut self, ms: u64) -> Self {
        self.cfg.monitor_window_ms = ms;
        self
    }

    /// Sets the epoch size for over-active-tenant identification in ms.
    pub fn scaling_epoch_ms(mut self, ms: u64) -> Self {
        self.cfg.scaling_epoch_ms = ms;
        self
    }

    /// Sets the minimum spacing between scaling checks of one group in ms.
    pub fn scaling_check_interval_ms(mut self, ms: u64) -> Self {
        self.cfg.scaling_check_interval_ms = ms;
        self
    }

    /// Enables RT-TTP trace sampling.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = Some(trace);
        self
    }

    /// Sets the telemetry recording policy.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Finalizes the configuration, validating every knob.
    ///
    /// # Errors
    /// [`ThriftyError::InvalidConfig`] when `sla_p` lies outside `(0, 1]`
    /// (or is not finite), or `monitor_window_ms` / `scaling_epoch_ms` is
    /// zero — values under which the monitor and the scaling trigger
    /// silently misbehave.
    pub fn build(self) -> ThriftyResult<ServiceConfig> {
        let cfg = self.cfg;
        if !cfg.sla_p.is_finite() || cfg.sla_p <= 0.0 || cfg.sla_p > 1.0 {
            return Err(ThriftyError::InvalidConfig(
                "sla_p must lie in (0, 1] (a fraction of time the SLA holds)",
            ));
        }
        if cfg.monitor_window_ms == 0 {
            return Err(ThriftyError::InvalidConfig(
                "monitor_window_ms must be non-zero (the RT-TTP sliding window)",
            ));
        }
        if cfg.scaling_epoch_ms == 0 {
            return Err(ThriftyError::InvalidConfig(
                "scaling_epoch_ms must be non-zero (over-active identification epochs)",
            ));
        }
        Ok(cfg)
    }
}

/// One knob difference observed by a configuration hot-reload diff
/// (values rendered as text so operators and wire protocols share one
/// shape).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KnobChange {
    /// Field name in [`ServiceConfig`].
    pub knob: String,
    /// The value currently in force.
    pub from: String,
    /// The candidate value.
    pub to: String,
}

/// A knob change a hot-reload refused to apply, with the reason it is
/// deploy-time-only.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RejectedKnob {
    /// The refused change.
    pub change: KnobChange,
    /// Why the knob cannot change on a live service.
    pub reason: String,
}

/// The outcome of [`ThriftyService::apply_config`]: which knob changes
/// were applied live and which were rejected as deploy-time-only.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigDelta {
    /// Changes applied to the running service.
    pub applied: Vec<KnobChange>,
    /// Changes refused (the running value stays in force).
    pub rejected: Vec<RejectedKnob>,
}

impl ConfigDelta {
    /// Whether the candidate configuration differed at all.
    pub fn is_noop(&self) -> bool {
        self.applied.is_empty() && self.rejected.is_empty()
    }
}

/// Renders one knob difference with `Debug` formatting on both sides.
fn knob_change<T: std::fmt::Debug>(knob: &str, from: &T, to: &T) -> KnobChange {
    KnobChange {
        knob: knob.to_string(),
        from: format!("{from:?}"),
        to: format!("{to:?}"),
    }
}

/// One RT-TTP sample of a traced group.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TtpSample {
    /// Sample instant on the *log* timeline (deployment offset removed).
    pub at_ms: u64,
    /// The tenant-group.
    pub group: usize,
    /// The group's RT-TTP at that instant.
    pub rt_ttp: f64,
}

/// The result of replaying a log through the service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Per-query SLA verdicts, in completion order.
    pub records: Vec<SlaRecord>,
    /// Aggregate compliance.
    pub summary: SlaSummary,
    /// Elastic-scaling actions taken.
    pub scaling_events: Vec<ScalingEvent>,
    /// RT-TTP trace samples (empty unless tracing was configured).
    pub ttp_trace: Vec<TtpSample>,
    /// Telemetry recorded along the way (empty when disabled).
    pub telemetry: crate::telemetry::TelemetrySnapshot,
}

/// An incoming query on the log timeline.
#[derive(Clone, Copy, Debug)]
pub struct IncomingQuery {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Submission instant on the log timeline.
    pub submit: SimTime,
    /// Template to execute.
    pub template: TemplateId,
    /// The tenant's dedicated-MPPDB latency for this query (the SLA).
    pub baseline: SimDuration,
}

/// One tenant's observed busy intervals (window-relative ms) — the
/// activity shape [`DeploymentAdvisor`](crate::advisor::DeploymentAdvisor)
/// consumes, as produced by
/// [`ThriftyService::observed_activity_intervals`].
pub type ObservedHistory = TenantHistory;

struct PendingScale {
    instance: InstanceId,
    moved: Vec<TenantId>,
    event_idx: usize,
}

struct GroupRuntime {
    members: Vec<Tenant>,
    /// Router index -> instance id; index 0 is the tuning MPPDB.
    instances: Vec<InstanceId>,
    router: QueryRouter,
    monitor: GroupActivityMonitor,
    monitor_generation: u32,
    /// Node size of this group's MPPDBs (`n_1`), used to size scale-out
    /// instances.
    node_size: u32,
    pending_scale: Option<PendingScale>,
    last_scaling_check_ms: u64,
    /// `Some(parent)` for scale-out groups created by elastic scaling.
    parent: Option<usize>,
    /// Whether this group has ever gone through elastic scaling — its
    /// members join the re-consolidation list (Chapter 5.1).
    has_scaled: bool,
    /// Set when a re-consolidation cycle retired this group: routing no
    /// longer targets it, and its instances are decommissioned as soon as
    /// the last in-flight query drains (zero-downtime cutover).
    retired: bool,
}

/// One replacement tenant-group being built by an active re-consolidation
/// cycle: its MPPDBs are provisioned empty, every member is bulk-loaded
/// onto every replica (Table 5.1 delays), and once `ready` covers all
/// replicas with no loads pending the group cuts over atomically.
struct GroupBuild {
    members: Vec<Tenant>,
    node_size: u32,
    instances: Vec<InstanceId>,
    /// Replicas that reached `Ready` (provisioning done, loads issued).
    ready: usize,
    /// Bulk loads issued but not yet finished across all replicas.
    loads_pending: usize,
    /// Set once this build has cut over.
    done: bool,
}

/// Executor state of one in-progress re-consolidation cycle.
struct ActiveCycle {
    cycle: u64,
    builds: Vec<GroupBuild>,
    /// Old group indices to retire once every build has cut over.
    retire: Vec<usize>,
    /// (instance, tenant) -> build index, for routing `TenantLoaded`
    /// completions back to their build.
    loads: BTreeMap<(InstanceId, TenantId), usize>,
    /// instance -> build index, for routing `InstanceReady` events.
    instance_build: BTreeMap<InstanceId, usize>,
}

struct Inflight {
    tenant: TenantId,
    group: usize,
    mppdb: usize,
    log_submit: SimTime,
    /// Absolute instant of the *first* submission. Preserved across a
    /// scale-out migration so the achieved latency includes the stall the
    /// query suffered before it was re-routed.
    submitted_abs: SimTime,
    baseline: SimDuration,
    route: RouteKind,
    monitor_generation: u32,
    /// Parked tenants bypass Algorithm 1: their data lives only on the
    /// park group's tuning MPPDB, so the router's free/busy bookkeeping
    /// never sees them.
    parked: bool,
}

/// The Thrifty MPPDBaaS service: deployment + run-time loop over the
/// simulated cluster.
pub struct ThriftyService {
    cluster: Cluster,
    config: ServiceConfig,
    templates: BTreeMap<TemplateId, QueryTemplate>,
    tenant_info: BTreeMap<TenantId, Tenant>,
    tenant_group: BTreeMap<TenantId, usize>,
    groups: Vec<GroupRuntime>,
    /// Keyed by a `BTreeMap` so every iteration (most importantly the
    /// scale-out migration sweep) visits queries in id order — replaying
    /// the same log twice reassigns identical query ids.
    inflight: BTreeMap<QueryId, Inflight>,
    records: Vec<SlaRecord>,
    scaling_events: Vec<ScalingEvent>,
    ttp_trace: Vec<TtpSample>,
    next_trace_ms: u64,
    /// Per-tenant historical activity ratios, used by over-active
    /// identification to detect deviation from history.
    historical_ratios: BTreeMap<TenantId, f64>,
    /// Pricing-model usage metering (Chapter 3).
    meter: UsageMeter,
    /// Metrics + event recorder (see [`crate::telemetry`]).
    telemetry: Telemetry,
    /// All log times are shifted by this offset: the deployment finishes
    /// provisioning first, then the observation horizon begins.
    offset_ms: u64,
    /// Tenants registered at run time and still parked on a tuning MPPDB,
    /// waiting for the next re-consolidation cycle to place them.
    parked: BTreeSet<TenantId>,
    /// (instance, tenant) -> (tenant info, park group) for registrations
    /// whose bulk load onto the park group's tuning MPPDB is in progress.
    /// The tenant is not routable until the load finishes.
    pending_parks: BTreeMap<(InstanceId, TenantId), (Tenant, usize)>,
    /// The in-progress re-consolidation cycle, if any.
    recon: Option<ActiveCycle>,
    /// Registrations that arrived while every park candidate was retiring
    /// mid-cycle; parked as soon as the cycle completes.
    deferred_regs: Vec<Tenant>,
    /// Completed re-consolidation cycles.
    cycles_completed: u64,
    /// Retired groups whose instances still serve in-flight queries; swept
    /// (decommissioned) once idle.
    retiring: Vec<usize>,
}

impl ThriftyService {
    /// Deploys a plan onto a fresh cluster of `total_nodes` nodes and
    /// prepares the run-time state. `templates` supplies the latency
    /// profile of every template id the replayed log may reference.
    ///
    /// # Errors
    /// Propagates the deployment master's failure when the plan does not
    /// fit the cluster (e.g. a group requests more nodes than remain in
    /// the pool) or an instance cannot be provisioned.
    pub fn deploy(
        plan: &DeploymentPlan,
        total_nodes: usize,
        templates: impl IntoIterator<Item = QueryTemplate>,
        config: ServiceConfig,
    ) -> ThriftyResult<Self> {
        let mut cluster = Cluster::new(ClusterConfig::new(total_nodes));
        let deployment = DeploymentMaster::deploy(plan, &mut cluster)?;
        let offset_ms = deployment.ready_at.as_ms();

        let mut tenant_info = BTreeMap::new();
        let mut tenant_group = BTreeMap::new();
        let mut groups = Vec::with_capacity(plan.groups.len());
        for (gi, (group_plan, instances)) in plan
            .groups
            .iter()
            .zip(deployment.instances.iter())
            .enumerate()
        {
            for member in &group_plan.members {
                tenant_info.insert(member.id, *member);
                tenant_group.insert(member.id, gi);
            }
            groups.push(GroupRuntime {
                members: group_plan.members.clone(),
                instances: instances.clone(),
                router: QueryRouter::new(instances.len()),
                monitor: GroupActivityMonitor::new(
                    group_plan.replication(),
                    config.monitor_window_ms,
                    offset_ms,
                ),
                monitor_generation: 0,
                node_size: group_plan.largest_request(),
                pending_scale: None,
                last_scaling_check_ms: 0,
                parent: None,
                has_scaled: false,
                retired: false,
            });
        }
        let next_trace_ms = offset_ms;
        let mut telemetry = Telemetry::new(config.telemetry);
        if telemetry.is_enabled() {
            // Pre-register the counter taxonomy at zero so every snapshot
            // carries the full set of names, touched or not.
            for name in [
                "queries.submitted",
                "queries.completed",
                "queries.cancelled",
                "queries.migrated",
                "route.sticky",
                "route.tuning_free",
                "route.other_free",
                "route.overflow",
                "sla.met",
                "sla.violated",
                "scaling.triggered",
                "scaling.activated",
                "tenants.migrated",
                "nodes.failed",
                "nodes.replaced",
                "nodes.replacement_deferred",
                "nodes.replacement_retried",
                "instances.provisioned",
                "instances.decommissioned",
                "tenants.registered",
                "tenants.deregistered",
                "bulk_loads.started",
                "bulk_loads.finished",
                "reconsolidation.started",
                "reconsolidation.completed",
                "reconsolidation.tenants_moved",
                "groups.cutover",
                "controller.skipped_busy",
                "controller.skipped_noop",
                "controller.skipped_nodes",
                "controller.skipped_deferred",
                "controller.adapt_shrink",
                "controller.adapt_grow",
                "controller.moves_deferred",
                "controller.builds_capped",
                "config.reloads",
                "config.knobs_applied",
                "config.knobs_rejected",
            ] {
                telemetry.incr_by(name, 0);
            }
            // The initial deployment counts as provisioning at log time 0.
            for group in &groups {
                for &instance in &group.instances {
                    let nodes = cluster
                        .instance(instance)
                        .map(|i| i.nodes().len())
                        .unwrap_or(0);
                    telemetry.incr("instances.provisioned");
                    telemetry.record(TelemetryEvent::InstanceProvisioned {
                        at_ms: 0,
                        instance,
                        nodes,
                    });
                }
            }
            telemetry.set_gauge("groups", groups.len() as i64);
        }
        Ok(ThriftyService {
            cluster,
            config,
            templates: templates.into_iter().map(|t| (t.id, t)).collect(),
            tenant_info,
            tenant_group,
            groups,
            inflight: BTreeMap::new(),
            records: Vec::new(),
            scaling_events: Vec::new(),
            ttp_trace: Vec::new(),
            next_trace_ms,
            offset_ms,
            historical_ratios: BTreeMap::new(),
            meter: UsageMeter::new(),
            telemetry,
            parked: BTreeSet::new(),
            pending_parks: BTreeMap::new(),
            recon: None,
            deferred_regs: Vec::new(),
            cycles_completed: 0,
            retiring: Vec::new(),
        })
    }

    /// Supplies the per-tenant historical activity ratios (fraction of time
    /// active in the consolidation history). With these set, elastic
    /// scaling only moves tenants that are genuinely *more active than the
    /// history indicated* (Chapter 5.1); without them, everyone the runtime
    /// grouping cannot keep in one group is eligible.
    pub fn set_historical_activity(&mut self, ratios: impl IntoIterator<Item = (TenantId, f64)>) {
        self.historical_ratios = ratios.into_iter().collect();
    }

    /// The simulated instant where the log timeline starts (deployment
    /// completion).
    pub fn log_epoch(&self) -> SimTime {
        SimTime::from_ms(self.offset_ms)
    }

    /// Number of tenant-groups (including scale-out groups created at
    /// run time).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group currently serving a tenant.
    pub fn group_of(&self, tenant: TenantId) -> Option<usize> {
        self.tenant_group.get(&tenant).copied()
    }

    /// Replays a chronologically ordered sequence of queries and returns
    /// the service report. May be called repeatedly with consecutive log
    /// segments; each call *drains* the accumulated records, scaling
    /// events, trace samples, and telemetry events into the returned
    /// report (summary counters stay cumulative inside the telemetry
    /// snapshot), so replaying a large log does not hold two copies of
    /// the record vectors in memory at once. Use [`Self::records`] or
    /// [`Self::report`] for non-draining access.
    ///
    /// # Errors
    /// Fails like [`Self::submit`]: a query naming an unknown tenant, or a
    /// simulator/bookkeeping error surfaced while delivering events.
    pub fn replay<I>(&mut self, queries: I) -> ThriftyResult<ServiceReport>
    where
        I: IntoIterator<Item = IncomingQuery>,
    {
        for q in queries {
            self.submit(q)?;
        }
        self.drain()?;
        Ok(self.take_report())
    }

    /// Submits one query at its log time, first delivering every simulator
    /// event up to that instant. Building block for closed-loop drivers
    /// that react to completions (e.g. the Figure 7.7 takeover). The
    /// effective submission instant never precedes the simulation clock:
    /// a query bearing an older log timestamp (e.g. scheduled against a
    /// completion that surfaced late) executes *now* — the monitor's
    /// interval accounting requires monotone event times.
    ///
    /// # Errors
    /// [`ThriftyError::UnknownTenant`] when the query names a tenant the
    /// deployment never loaded; propagates [`ThriftyError::Internal`] (or
    /// a simulator error) if event delivery violates the service's
    /// bookkeeping invariants.
    pub fn submit(&mut self, q: IncomingQuery) -> ThriftyResult<()> {
        let at =
            SimTime::from_ms((q.submit.as_ms() + self.offset_ms).max(self.cluster.now().as_ms()));
        self.advance_to(at)?;
        self.submit_query(q, at)
    }

    /// The current instant on the log timeline.
    pub fn log_now(&self) -> SimTime {
        SimTime::from_ms(self.cluster.now().as_ms().saturating_sub(self.offset_ms))
    }

    /// Read access to the underlying simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The MPPDB instances serving tenant-group `gi` (index 0 is the
    /// tuning MPPDB).
    pub fn group_instances(&self, gi: usize) -> Option<&[InstanceId]> {
        self.groups.get(gi).map(|g| g.instances.as_slice())
    }

    /// Schedules a node failure at a log-time instant. The MPPDB stays
    /// online at reduced parallelism and a replacement node is started
    /// automatically if the pool has one (Chapter 4.4).
    ///
    /// # Errors
    /// [`SimError::UnknownNode`] (wrapped) when `node` does not exist in
    /// the cluster.
    pub fn inject_node_failure(&mut self, node: NodeId, at_log: SimTime) -> ThriftyResult<()> {
        let at = SimTime::from_ms(at_log.as_ms() + self.offset_ms);
        self.cluster.inject_node_failure(node, at)?;
        Ok(())
    }

    /// Invoices a tenant under the given tariff (Chapter 3 pricing model:
    /// requested nodes + metered active usage).
    ///
    /// # Errors
    /// [`ThriftyError::UnknownTenant`] when the tenant is not part of the
    /// deployment.
    pub fn invoice(
        &self,
        tenant: TenantId,
        tariff: &Tariff,
        billing_days: f64,
    ) -> ThriftyResult<Invoice> {
        let info = self
            .tenant_info
            .get(&tenant)
            .ok_or(ThriftyError::UnknownTenant(tenant))?;
        Ok(self.meter.invoice(info, tariff, billing_days))
    }

    /// The observed per-tenant activity ratios since the deployment went
    /// live — the Tenant Activity Monitor's "active tenant ratio of all
    /// tenants in the past 30 days" feed (Chapter 3). These are exactly the
    /// histories the next (re-)consolidation cycle should be advised with,
    /// and the baseline [`Self::set_historical_activity`] expects.
    pub fn observed_activity_ratios(&self) -> Vec<(TenantId, f64)> {
        let elapsed = self
            .cluster
            .now()
            .as_ms()
            .saturating_sub(self.offset_ms)
            .max(1) as f64;
        self.meter
            .all_active_ms()
            .into_iter()
            .map(|(t, ms)| (t, ms as f64 / elapsed))
            .collect()
    }

    /// The re-consolidation list (Chapter 5.1): tenants in groups that have
    /// gone through elastic scaling (including the tenants moved to
    /// scale-out MPPDBs). These get re-consolidated together with new and
    /// de-registered tenants at the next consolidation cycle.
    pub fn reconsolidation_list(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = self
            .groups
            .iter()
            .filter(|g| g.has_scaled || g.parent.is_some())
            .flat_map(|g| g.members.iter().map(|m| m.id))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Advances the service (and the underlying simulation) to a log-time
    /// instant, delivering completions and scaling events on the way.
    ///
    /// Together with [`Self::drain`] and [`Self::run_until_quiescent_at`]
    /// this is the whole time-advancement surface: drivers never need to
    /// loop over [`Cluster::peek_next_event_time`] themselves.
    ///
    /// # Errors
    ///
    /// Propagates [`ThriftyError::Internal`] (or a simulator error) if the
    /// delivered events violate the service's bookkeeping invariants.
    pub fn advance_log_time(&mut self, log_time: SimTime) -> ThriftyResult<()> {
        self.advance_to(SimTime::from_ms(log_time.as_ms() + self.offset_ms))
    }

    /// The SLA records produced so far, in completion order.
    pub fn records(&self) -> &[SlaRecord] {
        &self.records
    }

    /// The instant one batched [`Cluster::run_until`] call may jump to, or
    /// `None` when events must be delivered one instant at a time.
    ///
    /// Batching is byte-identical to per-instant stepping exactly when no
    /// handler reads the simulation clock between instants: completions
    /// and node failures are stamped with their own event times, but trace
    /// sampling, elastic scaling, re-consolidation cutovers, and
    /// retiring-group sweeps all act on "now" and so force the slow path.
    /// The fast path is what makes a 100k-tenant replay tail drain in one
    /// heap sweep instead of hundreds of thousands of `run_until` calls.
    fn batched_drain_target(&self) -> Option<SimTime> {
        if self.config.trace.is_some()
            || self.config.elastic_scaling
            || self.recon.is_some()
            || !self.retiring.is_empty()
            || self.cluster.has_pending_lifecycle_events()
        {
            return None;
        }
        self.cluster.latest_pending_event_time()
    }

    /// Processes all outstanding simulator work (lets every running query
    /// finish). Internally drains in batched [`Cluster::run_until`] jumps
    /// whenever no clock-reading handler (tracing, elastic scaling,
    /// re-consolidation, retiring groups) is armed, falling back to
    /// per-instant delivery — byte-identical output either way.
    ///
    /// # Errors
    ///
    /// Propagates [`ThriftyError::Internal`] (or a simulator error) if the
    /// delivered events violate the service's bookkeeping invariants.
    pub fn drain(&mut self) -> ThriftyResult<()> {
        loop {
            if let Some(target) = self.batched_drain_target() {
                self.advance_to(target)?;
                // Processed events may schedule past the old target
                // (completion checks re-arm); loop until quiescent.
                continue;
            }
            match self.cluster.peek_next_event_time() {
                Some(t) => self.advance_to(t)?,
                None => return Ok(()),
            }
        }
    }

    /// Advances to the log-time instant `log_time` and then lets every
    /// query already in flight finish: [`Self::advance_log_time`] followed
    /// by a batched [`Self::drain`]. On return the simulation clock is at
    /// least `log_time` and the event heap is empty.
    ///
    /// This replaces the hand-rolled
    /// `while let Some(t) = peek_next_event_time() { advance... }` loops
    /// drivers used to write — see `crates/bench/src/fuzz.rs` and the
    /// examples.
    ///
    /// # Errors
    ///
    /// Propagates [`ThriftyError::Internal`] (or a simulator error) if the
    /// delivered events violate the service's bookkeeping invariants.
    pub fn run_until_quiescent_at(&mut self, log_time: SimTime) -> ThriftyResult<()> {
        self.advance_log_time(log_time)?;
        self.drain()
    }

    /// Builds the report for everything replayed so far without consuming
    /// any state (clones the record vectors; prefer [`Self::into_report`]
    /// or the draining [`Self::replay`] for large logs).
    pub fn report(&self) -> ServiceReport {
        ServiceReport {
            records: self.records.clone(),
            summary: SlaSummary::from_records(&self.records),
            scaling_events: self.scaling_events.clone(),
            ttp_trace: self.ttp_trace.clone(),
            telemetry: self.telemetry_snapshot(),
        }
    }

    /// Consumes the service and produces the final report without cloning
    /// the accumulated record vectors. Outstanding simulator work is
    /// drained first, so every submitted query is accounted for.
    ///
    /// # Errors
    ///
    /// Propagates [`ThriftyError::Internal`] (or a simulator error) if the
    /// final drain violates the service's bookkeeping invariants.
    pub fn into_report(mut self) -> ThriftyResult<ServiceReport> {
        self.drain()?;
        Ok(self.take_report())
    }

    /// The configuration currently in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Applies a hot-reload candidate configuration to the live service.
    ///
    /// The candidate first re-runs the [`ServiceConfigBuilder::build`]
    /// validation; each knob that differs from the running configuration
    /// is then classified. Run-time knobs — `sla_policy`, `sla_p`,
    /// `elastic_scaling`, `scaling_epoch_ms`, `scaling_check_interval_ms`
    /// — take effect immediately for all future routing, grading, and
    /// scaling decisions. Deploy-time knobs — `monitor_window_ms` (baked
    /// into every group's activity monitor at provisioning), `trace`
    /// (anchored to the deployment instant), and `telemetry` (sizes the
    /// event ring at deployment) — are rejected with a reason and keep
    /// their running values.
    ///
    /// # Errors
    /// [`ThriftyError::InvalidConfig`] when the candidate fails the
    /// builder validation (e.g. `sla_p` outside `(0, 1]`); nothing is
    /// applied in that case, including otherwise-safe knobs.
    pub fn apply_config(&mut self, candidate: ServiceConfig) -> ThriftyResult<ConfigDelta> {
        let candidate = candidate.to_builder().build()?;
        let cur = self.config.clone();
        let mut delta = ConfigDelta::default();

        if cur.sla_policy.tolerance != candidate.sla_policy.tolerance {
            delta.applied.push(knob_change(
                "sla_policy.tolerance",
                &cur.sla_policy.tolerance,
                &candidate.sla_policy.tolerance,
            ));
        }
        if cur.sla_p != candidate.sla_p {
            delta
                .applied
                .push(knob_change("sla_p", &cur.sla_p, &candidate.sla_p));
        }
        if cur.elastic_scaling != candidate.elastic_scaling {
            delta.applied.push(knob_change(
                "elastic_scaling",
                &cur.elastic_scaling,
                &candidate.elastic_scaling,
            ));
        }
        if cur.scaling_epoch_ms != candidate.scaling_epoch_ms {
            delta.applied.push(knob_change(
                "scaling_epoch_ms",
                &cur.scaling_epoch_ms,
                &candidate.scaling_epoch_ms,
            ));
        }
        if cur.scaling_check_interval_ms != candidate.scaling_check_interval_ms {
            delta.applied.push(knob_change(
                "scaling_check_interval_ms",
                &cur.scaling_check_interval_ms,
                &candidate.scaling_check_interval_ms,
            ));
        }

        if cur.monitor_window_ms != candidate.monitor_window_ms {
            delta.rejected.push(RejectedKnob {
                change: knob_change(
                    "monitor_window_ms",
                    &cur.monitor_window_ms,
                    &candidate.monitor_window_ms,
                ),
                reason: "the RT-TTP window is baked into every group's activity monitor \
                         at provisioning; redeploy to change it"
                    .to_string(),
            });
        }
        let trace_changed = match (&cur.trace, &candidate.trace) {
            (None, None) => false,
            (Some(a), Some(b)) => a.groups != b.groups || a.interval_ms != b.interval_ms,
            _ => true,
        };
        if trace_changed {
            delta.rejected.push(RejectedKnob {
                change: knob_change("trace", &cur.trace, &candidate.trace),
                reason: "RT-TTP trace sampling is anchored to the deployment instant; \
                         redeploy to change it"
                    .to_string(),
            });
        }
        if cur.telemetry != candidate.telemetry {
            delta.rejected.push(RejectedKnob {
                change: knob_change("telemetry", &cur.telemetry, &candidate.telemetry),
                reason: "the telemetry recording policy sizes the event ring at \
                         deployment; redeploy to change it"
                    .to_string(),
            });
        }

        self.config.sla_policy = candidate.sla_policy;
        self.config.sla_p = candidate.sla_p;
        self.config.elastic_scaling = candidate.elastic_scaling;
        self.config.scaling_epoch_ms = candidate.scaling_epoch_ms;
        self.config.scaling_check_interval_ms = candidate.scaling_check_interval_ms;

        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(self.cluster.now().as_ms());
            self.telemetry.incr("config.reloads");
            self.telemetry
                .incr_by("config.knobs_applied", delta.applied.len() as u64);
            self.telemetry
                .incr_by("config.knobs_rejected", delta.rejected.len() as u64);
            self.telemetry.record(TelemetryEvent::ConfigReloaded {
                at_ms,
                applied: delta.applied.len(),
                rejected: delta.rejected.len(),
            });
        }
        Ok(delta)
    }

    /// A snapshot of the telemetry recorded so far, with per-instance
    /// utilization filled in from the live cluster.
    pub fn telemetry_snapshot(&self) -> crate::telemetry::TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        if snap.enabled {
            self.fill_instance_utilization(&mut snap);
        }
        snap
    }

    fn fill_instance_utilization(&self, snap: &mut crate::telemetry::TelemetrySnapshot) {
        let now = self.cluster.now();
        let epoch = SimTime::from_ms(self.offset_ms);
        snap.instances = self
            .cluster
            .instances()
            .map(|inst| InstanceUtilization::from_instance(inst, epoch, now))
            .collect();
    }

    /// Moves the accumulated records out of the service into a report.
    /// `scaling_events` can only be drained while no scale-out is pending
    /// (a pending scale holds an index into the vector); after
    /// [`Self::drain`] that is the normal state.
    fn take_report(&mut self) -> ServiceReport {
        let records = std::mem::take(&mut self.records);
        let summary = SlaSummary::from_records(&records);
        let scaling_pending = self.groups.iter().any(|g| g.pending_scale.is_some());
        let scaling_events = if scaling_pending {
            self.scaling_events.clone()
        } else {
            std::mem::take(&mut self.scaling_events)
        };
        let ttp_trace = std::mem::take(&mut self.ttp_trace);
        let mut telemetry = self.telemetry.take_snapshot();
        if telemetry.enabled {
            self.fill_instance_utilization(&mut telemetry);
        }
        ServiceReport {
            records,
            summary,
            scaling_events,
            ttp_trace,
            telemetry,
        }
    }

    /// Schedules every node failure of a [`FailurePlan`] at its log-time
    /// instant (the plan's times are interpreted on the log timeline, like
    /// [`Self::inject_node_failure`]).
    ///
    /// # Errors
    /// Fails like [`Self::inject_node_failure`] on the first event naming
    /// an unknown node.
    pub fn apply_failure_plan(&mut self, plan: &FailurePlan) -> ThriftyResult<()> {
        for &(node, at) in plan.events() {
            self.inject_node_failure(node, at)?;
        }
        Ok(())
    }

    /// Translates an absolute simulated instant to the log timeline.
    fn log_ms(&self, abs_ms: u64) -> u64 {
        abs_ms.saturating_sub(self.offset_ms)
    }

    fn route_counter(kind: RouteKind) -> &'static str {
        match kind {
            RouteKind::Sticky => "route.sticky",
            RouteKind::TuningFree => "route.tuning_free",
            RouteKind::OtherFree => "route.other_free",
            RouteKind::Overflow => "route.overflow",
        }
    }

    fn advance_to(&mut self, t: SimTime) -> ThriftyResult<()> {
        self.sample_traces_until(t.as_ms());
        let events = self.cluster.run_until(t);
        for event in events {
            match event {
                SimEvent::QueryCompleted(c) => self.handle_completion(c)?,
                SimEvent::InstanceReady { instance, at } => {
                    self.activate_scale_out(instance, at)?;
                    self.recon_instance_ready(instance, at)?;
                }
                SimEvent::NodeFailed { node, instance, at } => {
                    // The MPPDB stays online at reduced parallelism
                    // (Chapter 4.4); record the event for the operators.
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.failed");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::NodeFailed {
                            at_ms,
                            node,
                            instance,
                        });
                    }
                }
                SimEvent::NodeReplaced { instance, node, at } => {
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.replaced");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::NodeReplaced {
                            at_ms,
                            instance,
                            node,
                        });
                    }
                }
                SimEvent::ReplacementDeferred { instance, node, at } => {
                    // No spare was available; the instance runs degraded
                    // until the pool refills and the retry fires.
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.replacement_deferred");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::ReplacementDeferred {
                            at_ms,
                            instance,
                            node,
                        });
                    }
                }
                SimEvent::ReplacementRetried { instance, node, at } => {
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.replacement_retried");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::ReplacementRetried {
                            at_ms,
                            instance,
                            node,
                        });
                    }
                }
                SimEvent::TenantLoaded {
                    instance,
                    tenant,
                    at,
                } => {
                    self.handle_tenant_loaded(instance, tenant, at)?;
                }
            }
        }
        self.sweep_retiring()?;
        Ok(())
    }

    fn sample_traces_until(&mut self, now_ms: u64) {
        let Some(trace) = &self.config.trace else {
            return;
        };
        while self.next_trace_ms <= now_ms {
            let at = self.next_trace_ms;
            for &g in &trace.groups {
                if let Some(group) = self.groups.get(g) {
                    self.ttp_trace.push(TtpSample {
                        at_ms: at.saturating_sub(self.offset_ms),
                        group: g,
                        rt_ttp: group.monitor.rt_ttp(at),
                    });
                }
            }
            self.next_trace_ms += trace.interval_ms;
        }
    }

    fn submit_query(&mut self, q: IncomingQuery, at: SimTime) -> ThriftyResult<()> {
        let tenant = *self
            .tenant_info
            .get(&q.tenant)
            .ok_or(ThriftyError::UnknownTenant(q.tenant))?;
        let gi = *self
            .tenant_group
            .get(&q.tenant)
            .ok_or(ThriftyError::UnknownTenant(q.tenant))?;
        let template = *self
            .templates
            .get(&q.template)
            .ok_or(ThriftyError::UnknownTemplate(q.template))?;
        let parked = self.parked.contains(&q.tenant);
        let group = &mut self.groups[gi];
        // Parked tenants' data lives only on the park group's tuning MPPDB,
        // so Algorithm 1 does not apply: route there directly and leave the
        // router's free/busy bookkeeping untouched.
        let route = if parked {
            Route {
                mppdb: 0,
                kind: RouteKind::TuningFree,
            }
        } else {
            group.router.route(q.tenant)
        };
        let instance = group.instances[route.mppdb];
        let spec = QuerySpec::new(template, tenant.data_gb, tenant.id);
        let qid = self.cluster.submit(instance, spec)?;
        group.monitor.on_query_start(q.tenant, at.as_ms());
        self.meter.on_query_start(q.tenant, at.as_ms());
        let monitor_generation = group.monitor_generation;
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(at.as_ms());
            self.telemetry.incr("queries.submitted");
            self.telemetry.incr(Self::route_counter(route.kind));
            self.telemetry.record(TelemetryEvent::QuerySubmitted {
                at_ms,
                query: qid,
                tenant: q.tenant,
                group: gi,
            });
            self.telemetry.record(TelemetryEvent::QueryRouted {
                at_ms,
                query: qid,
                tenant: q.tenant,
                group: gi,
                mppdb: route.mppdb,
                kind: route.kind,
            });
        }
        self.inflight.insert(
            qid,
            Inflight {
                tenant: q.tenant,
                group: gi,
                mppdb: route.mppdb,
                log_submit: q.submit,
                submitted_abs: at,
                baseline: q.baseline,
                route: route.kind,
                monitor_generation,
                parked,
            },
        );
        Ok(())
    }

    fn handle_completion(&mut self, c: QueryCompletion) -> ThriftyResult<()> {
        let Some(info) = self.inflight.remove(&c.query) else {
            return Ok(()); // aborted by decommission
        };
        let now_ms = c.finished.as_ms();
        let group = &mut self.groups[info.group];
        if !info.parked {
            group.router.complete(info.mppdb, info.tenant)?;
        }
        if info.monitor_generation == group.monitor_generation {
            group.monitor.on_query_finish(info.tenant, now_ms)?;
        }
        self.meter.on_query_finish(info.tenant, now_ms)?;
        // Achieved latency is measured from the query's first submission,
        // not from any re-submission a scale-out migration performed.
        let achieved = c.finished.saturating_since(info.submitted_abs);
        let record = SlaRecord::evaluate(
            info.tenant,
            info.group,
            c.template,
            info.log_submit,
            achieved,
            info.baseline,
            info.route,
            &self.config.sla_policy,
        );
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("queries.completed");
            self.telemetry.incr(if record.met {
                "sla.met"
            } else {
                "sla.violated"
            });
            self.telemetry.observe("query.latency_ms", achieved.as_ms());
            // Normalized performance vs the dedicated baseline, in percent
            // (100 = exactly the dedicated latency).
            self.telemetry
                .observe("query.slowdown_pct", (record.normalized * 100.0) as u64);
            self.telemetry.record(TelemetryEvent::QueryCompleted {
                at_ms,
                query: c.query,
                tenant: info.tenant,
                group: info.group,
                latency_ms: achieved.as_ms(),
                met: record.met,
            });
        }
        self.records.push(record);
        self.maybe_scale(info.group, now_ms)
    }

    /// Checks a group's RT-TTP and triggers lightweight elastic scaling
    /// when it falls below `P` (Chapter 5.1).
    fn maybe_scale(&mut self, gi: usize, now_ms: u64) -> ThriftyResult<()> {
        if !self.config.elastic_scaling
            // A re-consolidation cycle is already rebuilding the grouping —
            // scaling mid-cycle would fight over the free-node pool and
            // mutate groups the cycle has planned against.
            || self.recon.is_some()
        {
            return Ok(());
        }
        {
            let group = &self.groups[gi];
            if group.retired
                || group.parent.is_some()
                || group.pending_scale.is_some()
                || now_ms.saturating_sub(group.last_scaling_check_ms)
                    < self.config.scaling_check_interval_ms
            {
                return Ok(());
            }
        }
        self.groups[gi].last_scaling_check_ms = now_ms;
        if self.groups[gi].monitor.rt_ttp(now_ms) >= self.config.sla_p {
            return Ok(());
        }
        let group = &self.groups[gi];
        let history = if self.historical_ratios.is_empty() {
            None
        } else {
            Some(&self.historical_ratios)
        };
        let over_active = identify_over_active(
            &group.members,
            &group.monitor,
            group.monitor.budget(),
            self.config.sla_p,
            self.config.scaling_epoch_ms,
            now_ms,
            history,
        );
        // Never strip the whole group; keep at least one member.
        if over_active.is_empty() || over_active.len() >= group.members.len() {
            return Ok(());
        }
        let datasets: Vec<(TenantId, f64)> = over_active
            .iter()
            .map(|id| {
                let t = self.tenant_info[id];
                (t.id, t.data_gb)
            })
            .collect();
        let node_size = self.groups[gi].node_size as usize;
        let instance = match self.cluster.provision_instance(node_size, &datasets) {
            Ok(id) => id,
            // No spare nodes: the cloud ran dry; scaling is impossible now.
            Err(SimError::InsufficientNodes { .. }) => return Ok(()),
            // Any other provisioning failure is a bug in our request —
            // surface it instead of panicking.
            Err(e) => return Err(ThriftyError::Sim(e)),
        };
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            let nodes = self
                .cluster
                .instance(instance)
                .map(|i| i.nodes().len())
                .unwrap_or(0);
            self.telemetry.incr("scaling.triggered");
            self.telemetry.incr("instances.provisioned");
            self.telemetry.record(TelemetryEvent::ScalingTriggered {
                at_ms,
                group: gi,
                tenants: over_active.len(),
            });
            self.telemetry.record(TelemetryEvent::InstanceProvisioned {
                at_ms,
                instance,
                nodes,
            });
        }
        let event_idx = self.scaling_events.len();
        self.scaling_events.push(ScalingEvent {
            group: gi,
            triggered_at: SimTime::from_ms(now_ms.saturating_sub(self.offset_ms)),
            over_active: over_active.clone(),
            ready_at: None,
        });
        self.groups[gi].pending_scale = Some(PendingScale {
            instance,
            moved: over_active,
            event_idx,
        });
        Ok(())
    }

    /// Completes a pending scale-out when its MPPDB finishes loading: the
    /// over-active tenants move to a new single-MPPDB group and the parent
    /// group's monitoring restarts without their history.
    fn activate_scale_out(&mut self, instance: InstanceId, at: SimTime) -> ThriftyResult<()> {
        let Some(gi) = self
            .groups
            .iter()
            .position(|g| matches!(&g.pending_scale, Some(p) if p.instance == instance))
        else {
            return Ok(());
        };
        // The position lookup above matched on `pending_scale`, so `take`
        // must yield it; anything else is corrupt bookkeeping.
        let Some(pending) = self.groups[gi].pending_scale.take() else {
            return Err(ThriftyError::Internal(
                "a matched pending scale-out must be present in its group",
            ));
        };
        self.groups[gi].has_scaled = true;
        let now_ms = at.as_ms();
        self.scaling_events[pending.event_idx].ready_at =
            Some(SimTime::from_ms(now_ms.saturating_sub(self.offset_ms)));

        // Split members.
        let moved_set: Vec<TenantId> = pending.moved.clone();
        let (moved, kept): (Vec<Tenant>, Vec<Tenant>) = self.groups[gi]
            .members
            .iter()
            .partition(|m| moved_set.contains(&m.id));
        self.groups[gi].members = kept;

        // Restart the parent group's monitor without the movers' history
        // ("the tenant-group excluded all the activities of the removed
        // tenant" — Chapter 7.5). Queries already running keep their old
        // generation so their completions do not unbalance the new monitor;
        // remaining members' running queries are re-registered.
        let budget = self.groups[gi].monitor.budget();
        self.groups[gi].monitor =
            GroupActivityMonitor::new(budget, self.config.monitor_window_ms, now_ms);
        self.groups[gi].monitor_generation += 1;
        let new_generation = self.groups[gi].monitor_generation;
        let kept_ids: Vec<TenantId> = self.groups[gi].members.iter().map(|m| m.id).collect();
        for info in self.inflight.values_mut() {
            if info.group == gi && kept_ids.contains(&info.tenant) {
                self.groups[gi].monitor.on_query_start(info.tenant, now_ms);
                info.monitor_generation = new_generation;
            }
        }

        // The new group: one MPPDB, exclusively serving the over-active
        // tenants.
        let new_gi = self.groups.len();
        let node_size = self.groups[gi].node_size;
        for t in &moved {
            self.tenant_group.insert(t.id, new_gi);
        }
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("scaling.activated");
            self.telemetry
                .incr_by("tenants.migrated", moved.len() as u64);
            self.telemetry.record(TelemetryEvent::ScalingActivated {
                at_ms,
                group: gi,
                new_group: new_gi,
            });
            for t in &moved {
                self.telemetry.record(TelemetryEvent::TenantMigrated {
                    at_ms,
                    tenant: t.id,
                    from_group: gi,
                    to_group: new_gi,
                });
            }
            self.telemetry
                .set_gauge("groups", (self.groups.len() + 1) as i64);
        }
        self.groups.push(GroupRuntime {
            members: moved,
            instances: vec![instance],
            router: QueryRouter::new(1),
            monitor: GroupActivityMonitor::new(1, self.config.monitor_window_ms, now_ms),
            monitor_generation: 0,
            node_size,
            pending_scale: None,
            last_scaling_check_ms: now_ms,
            parent: Some(gi),
            has_scaled: false,
            retired: false,
        });

        // "Thrifty routed all the queries to the new MPPDB" (Chapter 7.5):
        // the movers' queries still queued on the old group are migrated,
        // freeing the tuning MPPDB from the overload backlog. Their achieved
        // latency keeps the original submission time, so the stall they
        // already suffered stays visible in the SLA records.
        let migrate: Vec<QueryId> = self
            .inflight
            .iter()
            .filter(|(_, info)| info.group == gi && moved_set.contains(&info.tenant))
            .map(|(&qid, _)| qid)
            .collect();
        for qid in migrate {
            // Collected from the map just above and nothing removes entries
            // in between; a miss would mean corrupt bookkeeping.
            let Some(info) = self.inflight.remove(&qid) else {
                return Err(ThriftyError::Internal(
                    "a query listed for migration must still be in flight",
                ));
            };
            let old_instance = self.groups[gi].instances[info.mppdb];
            // The query may have completed within the same event batch that
            // delivered this instance-ready notification (the cluster state
            // is already final for the whole batch). Its completion event is
            // still queued behind us: put the bookkeeping back and let the
            // normal completion path handle it.
            let Ok((spec, _submitted)) = self.cluster.cancel_query(old_instance, qid) else {
                self.inflight.insert(qid, info);
                continue;
            };
            self.groups[gi].router.complete(info.mppdb, info.tenant)?;
            // Restart on the new MPPDB. The new query id replaces the old
            // one in the in-flight map; latency accounting is anchored to
            // the original log submission via `log_submit`/`baseline`. The
            // scale-out instance hosts every moved tenant, so a submission
            // failure is a genuine error worth surfacing.
            let route = self.groups[new_gi].router.route(info.tenant);
            let new_qid = self.cluster.submit(instance, spec)?;
            self.groups[new_gi]
                .monitor
                .on_query_start(info.tenant, now_ms);
            if self.telemetry.is_enabled() {
                let at_ms = self.log_ms(now_ms);
                self.telemetry.incr("queries.cancelled");
                self.telemetry.incr("queries.submitted");
                self.telemetry.incr("queries.migrated");
                self.telemetry.incr(Self::route_counter(route.kind));
                self.telemetry.record(TelemetryEvent::QueryCancelled {
                    at_ms,
                    query: qid,
                    tenant: info.tenant,
                    group: gi,
                });
                self.telemetry.record(TelemetryEvent::QuerySubmitted {
                    at_ms,
                    query: new_qid,
                    tenant: info.tenant,
                    group: new_gi,
                });
                self.telemetry.record(TelemetryEvent::QueryRouted {
                    at_ms,
                    query: new_qid,
                    tenant: info.tenant,
                    group: new_gi,
                    mppdb: route.mppdb,
                    kind: route.kind,
                });
            }
            self.inflight.insert(
                new_qid,
                Inflight {
                    tenant: info.tenant,
                    group: new_gi,
                    mppdb: route.mppdb,
                    log_submit: info.log_submit,
                    submitted_abs: info.submitted_abs,
                    baseline: info.baseline,
                    route: route.kind,
                    monitor_generation: self.groups[new_gi].monitor_generation,
                    // Only group members are ever moved; parked tenants are
                    // not members until their cycle places them.
                    parked: false,
                },
            );
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Tenant lifecycle (Chapter 5.1): registration parks new tenants on a
    // tuning MPPDB until the next re-consolidation cycle places them.
    // ------------------------------------------------------------------

    /// Registers a new tenant with the live service. The tenant's data is
    /// bulk-loaded onto the tuning MPPDB of the first live root group (the
    /// park group) with Table 5.1 delays; the tenant becomes routable when
    /// the load finishes and stays *parked* there until the next
    /// re-consolidation cycle assigns it a proper tenant-group.
    ///
    /// # Errors
    ///
    /// [`ThriftyError::DuplicateTenant`] if the id is already live or
    /// loading, [`ThriftyError::NotDeployed`] if no live group can park it,
    /// and simulator errors from the bulk load.
    pub fn register_tenant(&mut self, tenant: Tenant) -> ThriftyResult<()> {
        if self.tenant_info.contains_key(&tenant.id)
            || self.pending_parks.keys().any(|&(_, t)| t == tenant.id)
            || self.deferred_regs.iter().any(|t| t.id == tenant.id)
        {
            return Err(ThriftyError::DuplicateTenant(tenant.id));
        }
        let now_ms = self.cluster.now().as_ms();
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("tenants.registered");
            self.telemetry.record(TelemetryEvent::TenantRegistered {
                at_ms,
                tenant: tenant.id,
            });
        }
        match self.park_group() {
            Some(park) => self.park_tenant(tenant, park, now_ms),
            // Mid-cycle every candidate may be marked for retirement; hold
            // the registration until the cycle's new groups go live.
            None if self.recon.is_some() => {
                self.deferred_regs.push(tenant);
                Ok(())
            }
            None => Err(ThriftyError::NotDeployed),
        }
    }

    /// Picks the first root group that is alive and not about to be retired
    /// by the in-progress cycle, if any qualifies.
    fn park_group(&self) -> Option<usize> {
        let in_retire: BTreeSet<usize> = self
            .recon
            .as_ref()
            .map(|c| c.retire.iter().copied().collect())
            .unwrap_or_default();
        self.groups
            .iter()
            .enumerate()
            .find(|(gi, g)| {
                !g.retired
                    && g.parent.is_none()
                    && !g.instances.is_empty()
                    && !in_retire.contains(gi)
            })
            .map(|(gi, _)| gi)
    }

    /// Starts the bulk load that parks `tenant` on `park`'s tuning MPPDB.
    fn park_tenant(&mut self, tenant: Tenant, park: usize, now_ms: u64) -> ThriftyResult<()> {
        let instance = self.groups[park].instances[0];
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("bulk_loads.started");
            self.telemetry.record(TelemetryEvent::BulkLoadStarted {
                at_ms,
                instance,
                tenant: tenant.id,
            });
        }
        self.cluster
            .load_tenant(instance, tenant.id, tenant.data_gb)?;
        let instantly_hosted = self
            .cluster
            .instance(instance)
            .map(|i| i.hosts(tenant.id))
            .unwrap_or(false);
        if instantly_hosted {
            // Zero-size loads complete synchronously (no event fires).
            self.finish_park(instance, tenant, park, now_ms);
        } else {
            self.pending_parks
                .insert((instance, tenant.id), (tenant, park));
        }
        Ok(())
    }

    /// Parks registrations that were deferred because every park candidate
    /// was retiring mid-cycle. Called once the cycle's new groups are live.
    fn flush_deferred_regs(&mut self, now_ms: u64) -> ThriftyResult<()> {
        if self.deferred_regs.is_empty() {
            return Ok(());
        }
        let Some(park) = self.park_group() else {
            return Err(ThriftyError::NotDeployed);
        };
        let deferred = std::mem::take(&mut self.deferred_regs);
        for tenant in deferred {
            self.park_tenant(tenant, park, now_ms)?;
        }
        Ok(())
    }

    /// Completes a registration: the tenant's data reached the park
    /// group's tuning MPPDB and the tenant becomes routable (parked).
    fn finish_park(&mut self, instance: InstanceId, tenant: Tenant, park: usize, now_ms: u64) {
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("bulk_loads.finished");
            self.telemetry.record(TelemetryEvent::BulkLoadFinished {
                at_ms,
                instance,
                tenant: tenant.id,
            });
        }
        self.tenant_info.insert(tenant.id, tenant);
        self.tenant_group.insert(tenant.id, park);
        self.groups[park].members.push(tenant);
        self.parked.insert(tenant.id);
    }

    /// Deregisters a tenant from the live service and returns its record.
    /// A still-loading registration is simply cancelled; a live tenant's
    /// replicas are dropped in place (freeing the space) and the tenant is
    /// scrubbed from any in-progress cycle. Queries already in flight
    /// finish normally and keep their SLA accounting.
    ///
    /// # Errors
    ///
    /// [`ThriftyError::UnknownTenant`] if the id is neither live nor
    /// loading; simulator errors from dropping replicas.
    pub fn deregister_tenant(&mut self, tenant: TenantId) -> ThriftyResult<Tenant> {
        let now_ms = self.cluster.now().as_ms();
        // A registration deferred by an in-progress cycle never loaded any
        // data: just forget it.
        if let Some(pos) = self.deferred_regs.iter().position(|t| t.id == tenant) {
            let info = self.deferred_regs.remove(pos);
            self.record_deregistration(tenant, now_ms);
            return Ok(info);
        }
        // A registration still bulk loading: cancel it. The eventual
        // `TenantLoaded` event finds no pending park and drops the data.
        if let Some(key) = self
            .pending_parks
            .keys()
            .copied()
            .find(|&(_, t)| t == tenant)
        {
            // The key was found just above; the entry must exist.
            let Some((info, _park)) = self.pending_parks.remove(&key) else {
                return Err(ThriftyError::Internal(
                    "a found pending park must be removable",
                ));
            };
            self.record_deregistration(tenant, now_ms);
            return Ok(info);
        }
        let Some(info) = self.tenant_info.remove(&tenant) else {
            return Err(ThriftyError::UnknownTenant(tenant));
        };
        let gi = self.tenant_group.remove(&tenant);
        if let Some(gi) = gi {
            self.groups[gi].members.retain(|m| m.id != tenant);
            // Reclaim the replica space wherever this group hosts the data.
            let instances: Vec<InstanceId> = self.groups[gi].instances.clone();
            for inst in instances {
                let hosts = self
                    .cluster
                    .instance(inst)
                    .map(|i| i.hosts(tenant))
                    .unwrap_or(false);
                if hosts {
                    self.cluster.drop_tenant(inst, tenant)?;
                }
            }
        }
        self.parked.remove(&tenant);
        self.scrub_from_cycle(tenant, now_ms)?;
        self.record_deregistration(tenant, now_ms);
        Ok(info)
    }

    fn record_deregistration(&mut self, tenant: TenantId, now_ms: u64) {
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("tenants.deregistered");
            self.telemetry
                .record(TelemetryEvent::TenantDeregistered { at_ms, tenant });
        }
    }

    /// Removes a departing tenant from an in-progress cycle: its planned
    /// memberships, pending loads, and already-loaded replicas all go. A
    /// build that was only waiting on this tenant may become cut-over
    /// ready, so progress is re-checked.
    fn scrub_from_cycle(&mut self, tenant: TenantId, now_ms: u64) -> ThriftyResult<()> {
        let Some(cycle) = self.recon.as_mut() else {
            return Ok(());
        };
        let mut dropped_loads = Vec::new();
        cycle.loads.retain(|&(inst, t), &mut bi| {
            if t == tenant {
                dropped_loads.push((inst, bi));
                false
            } else {
                true
            }
        });
        for &(_, bi) in &dropped_loads {
            cycle.builds[bi].loads_pending = cycle.builds[bi].loads_pending.saturating_sub(1);
        }
        let mut drop_from: Vec<InstanceId> = Vec::new();
        for build in cycle.builds.iter_mut() {
            if build.members.iter().any(|m| m.id == tenant) {
                build.members.retain(|m| m.id != tenant);
                drop_from.extend(build.instances.iter().copied());
            }
        }
        for inst in drop_from {
            let hosts = self
                .cluster
                .instance(inst)
                .map(|i| i.hosts(tenant))
                .unwrap_or(false);
            if hosts {
                self.cluster.drop_tenant(inst, tenant)?;
            }
        }
        self.check_cycle_progress(now_ms)
    }

    // ------------------------------------------------------------------
    // Re-consolidation executor: provision empty replicas, bulk load every
    // member onto every replica while the old deployment keeps serving,
    // cut routing over per group, then retire and decommission stale
    // instances once they drain.
    // ------------------------------------------------------------------

    /// Starts executing a re-consolidation cycle. Replacement groups are
    /// provisioned from the free pool and bulk-loaded in the background;
    /// the old deployment keeps serving until each build cuts over.
    ///
    /// The plan must cover the live tenant population exactly: every live
    /// tenant appears in exactly one build or one kept group, every
    /// current root group is either kept or retired, and retired groups'
    /// members all reappear in builds. Validation happens before any
    /// cluster mutation, so a rejected plan leaves the service untouched.
    ///
    /// # Errors
    ///
    /// [`ThriftyError::Internal`] for an invalid plan, a cycle already in
    /// progress, or registrations still loading;
    /// [`SimError::InsufficientNodes`] (wrapped) when the free pool cannot
    /// host the new deployment — the cycle is skipped, nothing changes.
    pub fn begin_reconsolidation(&mut self, plan: &CyclePlan) -> ThriftyResult<()> {
        if self.recon.is_some() {
            return Err(ThriftyError::Internal(
                "a re-consolidation cycle is already in progress",
            ));
        }
        if !self.pending_parks.is_empty() {
            return Err(ThriftyError::Internal(
                "registrations are still bulk loading; plan the cycle after they land",
            ));
        }
        self.validate_cycle_plan(plan)?;
        // Headroom precheck: fail without side effects rather than strand
        // a half-provisioned cycle.
        let needed: usize = plan
            .builds
            .iter()
            .map(|b| (b.replication as usize) * (b.node_size as usize))
            .sum();
        let available = self.cluster.free_nodes();
        if needed > available {
            return Err(ThriftyError::Sim(SimError::InsufficientNodes {
                requested: needed,
                available,
            }));
        }
        let now_ms = self.cluster.now().as_ms();
        let cycle_no = self.cycles_completed + 1;
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("reconsolidation.started");
            self.telemetry
                .record(TelemetryEvent::ReconsolidationStarted {
                    at_ms,
                    cycle: cycle_no,
                    builds: plan.builds.len(),
                    retiring: plan.retire.len(),
                });
        }
        let mut cycle = ActiveCycle {
            cycle: cycle_no,
            builds: Vec::with_capacity(plan.builds.len()),
            retire: plan.retire.clone(),
            loads: BTreeMap::new(),
            instance_build: BTreeMap::new(),
        };
        let mut instant_ready: Vec<(InstanceId, SimTime)> = Vec::new();
        for (bi, planned) in plan.builds.iter().enumerate() {
            let mut instances = Vec::with_capacity(planned.replication as usize);
            for _ in 0..planned.replication {
                // Provision *empty* and bulk load afterwards: the old
                // deployment serves during the whole startup + load window.
                let instance = self
                    .cluster
                    .provision_instance(planned.node_size as usize, &[])?;
                cycle.instance_build.insert(instance, bi);
                if self.telemetry.is_enabled() {
                    let at_ms = self.log_ms(now_ms);
                    let nodes = self
                        .cluster
                        .instance(instance)
                        .map(|i| i.nodes().len())
                        .unwrap_or(0);
                    self.telemetry.incr("instances.provisioned");
                    self.telemetry.record(TelemetryEvent::InstanceProvisioned {
                        at_ms,
                        instance,
                        nodes,
                    });
                }
                // Instant provisioning (tests) readies the instance
                // synchronously and fires no event — handle it inline.
                let ready_now = self
                    .cluster
                    .instance(instance)
                    .map(|i| i.state() == InstanceState::Ready)
                    .unwrap_or(false);
                if ready_now {
                    instant_ready.push((instance, self.cluster.now()));
                }
                instances.push(instance);
            }
            cycle.builds.push(GroupBuild {
                members: planned.members.clone(),
                node_size: planned.node_size,
                instances,
                ready: 0,
                loads_pending: 0,
                done: false,
            });
        }
        self.recon = Some(cycle);
        for (instance, at) in instant_ready {
            self.recon_instance_ready(instance, at)?;
        }
        // A plan with no builds (pure retirement) — or one fully satisfied
        // by instant provisioning — completes synchronously.
        self.check_cycle_progress(now_ms)
    }

    /// Validates a cycle plan against the live population and grouping.
    fn validate_cycle_plan(&self, plan: &CyclePlan) -> ThriftyResult<()> {
        let root_groups: BTreeSet<usize> = self
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.retired)
            .map(|(gi, _)| gi)
            .collect();
        let keep: BTreeSet<usize> = plan.keep.iter().copied().collect();
        let retire: BTreeSet<usize> = plan.retire.iter().copied().collect();
        if keep.len() != plan.keep.len() || retire.len() != plan.retire.len() {
            return Err(ThriftyError::Internal(
                "cycle plan lists a group index twice",
            ));
        }
        if !keep.is_disjoint(&retire) {
            return Err(ThriftyError::Internal(
                "cycle plan both keeps and retires a group",
            ));
        }
        for &gi in keep.iter().chain(retire.iter()) {
            if !root_groups.contains(&gi) {
                return Err(ThriftyError::Internal(
                    "cycle plan references a retired or unknown group",
                ));
            }
        }
        for &gi in &root_groups {
            if !keep.contains(&gi) && !retire.contains(&gi) {
                return Err(ThriftyError::Internal(
                    "cycle plan leaves a live group neither kept nor retired",
                ));
            }
        }
        // Every live tenant must land exactly once: in one build, or in one
        // kept group it already belongs to.
        let mut placed: BTreeSet<TenantId> = BTreeSet::new();
        for planned in &plan.builds {
            if planned.members.is_empty() || planned.replication == 0 || planned.node_size == 0 {
                return Err(ThriftyError::Internal(
                    "cycle plan contains an empty or zero-sized build",
                ));
            }
            for m in &planned.members {
                if !self.tenant_info.contains_key(&m.id) {
                    return Err(ThriftyError::Internal(
                        "cycle plan builds a group around an unknown tenant",
                    ));
                }
                if !placed.insert(m.id) {
                    return Err(ThriftyError::Internal("cycle plan places a tenant twice"));
                }
            }
        }
        for &gi in &keep {
            for m in &self.groups[gi].members {
                if !placed.insert(m.id) {
                    return Err(ThriftyError::Internal("cycle plan places a tenant twice"));
                }
            }
        }
        if placed.len() != self.tenant_info.len() {
            return Err(ThriftyError::Internal(
                "cycle plan does not cover every live tenant",
            ));
        }
        Ok(())
    }

    /// An instance provisioned for a build finished starting up: bulk load
    /// every member of the build onto it.
    fn recon_instance_ready(&mut self, instance: InstanceId, at: SimTime) -> ThriftyResult<()> {
        let Some(bi) = self
            .recon
            .as_ref()
            .and_then(|c| c.instance_build.get(&instance).copied())
        else {
            return Ok(());
        };
        let now_ms = at.as_ms();
        let members: Vec<Tenant> = {
            // The build index came out of this cycle's own map just above.
            let Some(cycle) = self.recon.as_mut() else {
                return Err(ThriftyError::Internal(
                    "a matched recon instance must have its cycle",
                ));
            };
            cycle.builds[bi].ready += 1;
            cycle.builds[bi].members.clone()
        };
        for m in members {
            if self.telemetry.is_enabled() {
                let at_ms = self.log_ms(now_ms);
                self.telemetry.incr("bulk_loads.started");
                self.telemetry.record(TelemetryEvent::BulkLoadStarted {
                    at_ms,
                    instance,
                    tenant: m.id,
                });
            }
            self.cluster.load_tenant(instance, m.id, m.data_gb)?;
            let instantly_hosted = self
                .cluster
                .instance(instance)
                .map(|i| i.hosts(m.id))
                .unwrap_or(false);
            if instantly_hosted {
                if self.telemetry.is_enabled() {
                    let at_ms = self.log_ms(now_ms);
                    self.telemetry.incr("bulk_loads.finished");
                    self.telemetry.record(TelemetryEvent::BulkLoadFinished {
                        at_ms,
                        instance,
                        tenant: m.id,
                    });
                }
            } else if let Some(cycle) = self.recon.as_mut() {
                cycle.loads.insert((instance, m.id), bi);
                cycle.builds[bi].loads_pending += 1;
            }
        }
        self.check_cycle_progress(now_ms)
    }

    /// A bulk load completed: either a parked registration landed, a build
    /// replica gained a member, or (for a cancelled registration) the data
    /// is orphaned and dropped again.
    fn handle_tenant_loaded(
        &mut self,
        instance: InstanceId,
        tenant: TenantId,
        at: SimTime,
    ) -> ThriftyResult<()> {
        let now_ms = at.as_ms();
        if let Some((info, park)) = self.pending_parks.remove(&(instance, tenant)) {
            self.finish_park(instance, info, park, now_ms);
            return Ok(());
        }
        let from_cycle = self
            .recon
            .as_mut()
            .and_then(|c| c.loads.remove(&(instance, tenant)));
        if let Some(bi) = from_cycle {
            if let Some(cycle) = self.recon.as_mut() {
                cycle.builds[bi].loads_pending = cycle.builds[bi].loads_pending.saturating_sub(1);
            }
            if self.telemetry.is_enabled() {
                let at_ms = self.log_ms(now_ms);
                self.telemetry.incr("bulk_loads.finished");
                self.telemetry.record(TelemetryEvent::BulkLoadFinished {
                    at_ms,
                    instance,
                    tenant,
                });
            }
            return self.check_cycle_progress(now_ms);
        }
        // Orphaned load (the registration or planned membership was
        // cancelled mid-flight): reclaim the space.
        if !self.tenant_info.contains_key(&tenant) {
            let hosts = self
                .cluster
                .instance(instance)
                .map(|i| i.hosts(tenant))
                .unwrap_or(false);
            if hosts {
                self.cluster.drop_tenant(instance, tenant)?;
            }
        }
        Ok(())
    }

    /// Cuts over every build whose replicas are all ready and loaded; when
    /// the last build lands, the cycle finishes and old groups retire.
    fn check_cycle_progress(&mut self, now_ms: u64) -> ThriftyResult<()> {
        loop {
            let Some(cycle) = self.recon.as_ref() else {
                return Ok(());
            };
            let Some(bi) = cycle
                .builds
                .iter()
                .position(|b| !b.done && b.ready == b.instances.len() && b.loads_pending == 0)
            else {
                break;
            };
            self.cutover_build(bi, now_ms);
        }
        let all_done = self
            .recon
            .as_ref()
            .map(|c| c.builds.iter().all(|b| b.done))
            .unwrap_or(false);
        if all_done {
            self.finish_cycle(now_ms)?;
        }
        Ok(())
    }

    /// Atomic routing cutover of one build: its members' submissions now
    /// target the new group; queries in flight keep running on the old
    /// instances (their routers and monitors stay live until they drain).
    fn cutover_build(&mut self, bi: usize, now_ms: u64) {
        let (members, instances, node_size) = {
            let Some(cycle) = self.recon.as_mut() else {
                return;
            };
            let build = &mut cycle.builds[bi];
            build.done = true;
            (
                build.members.clone(),
                build.instances.clone(),
                build.node_size,
            )
        };
        let new_gi = self.groups.len();
        for m in &members {
            if let Some(&old_gi) = self.tenant_group.get(&m.id) {
                self.groups[old_gi].members.retain(|t| t.id != m.id);
            }
            self.tenant_group.insert(m.id, new_gi);
            self.parked.remove(&m.id);
        }
        let replicas = instances.len();
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("groups.cutover");
            self.telemetry
                .incr_by("reconsolidation.tenants_moved", members.len() as u64);
            self.telemetry.record(TelemetryEvent::GroupCutover {
                at_ms,
                group: new_gi,
                tenants: members.len(),
                replicas,
            });
            self.telemetry
                .set_gauge("groups", (self.groups.len() + 1) as i64);
        }
        self.groups.push(GroupRuntime {
            members,
            instances,
            router: QueryRouter::new(replicas),
            monitor: GroupActivityMonitor::new(
                replicas as u32,
                self.config.monitor_window_ms,
                now_ms,
            ),
            monitor_generation: 0,
            node_size,
            pending_scale: None,
            last_scaling_check_ms: now_ms,
            parent: None,
            has_scaled: false,
            retired: false,
        });
    }

    /// The last build cut over: old groups retire (their remaining replica
    /// data is dropped) and their instances decommission once idle.
    fn finish_cycle(&mut self, now_ms: u64) -> ThriftyResult<()> {
        let Some(cycle) = self.recon.take() else {
            return Ok(());
        };
        let mut retired_groups = 0usize;
        for gi in cycle.retire {
            let group = &mut self.groups[gi];
            group.retired = true;
            if !group.members.is_empty() {
                return Err(ThriftyError::Internal(
                    "a retiring group still owns tenants after the last cutover",
                ));
            }
            let instances: Vec<InstanceId> = group.instances.clone();
            for inst in instances {
                let hosted: Vec<TenantId> = self
                    .cluster
                    .instance(inst)
                    .map(|i| i.hosted_tenants().map(|(t, _)| t).collect())
                    .unwrap_or_default();
                for t in hosted {
                    self.cluster.drop_tenant(inst, t)?;
                }
            }
            self.retiring.push(gi);
            retired_groups += 1;
        }
        self.cycles_completed = cycle.cycle;
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("reconsolidation.completed");
            self.telemetry
                .record(TelemetryEvent::ReconsolidationCompleted {
                    at_ms,
                    cycle: cycle.cycle,
                    groups_built: self
                        .groups
                        .iter()
                        .filter(|g| !g.retired && g.parent.is_none())
                        .count(),
                    groups_retired: retired_groups,
                });
        }
        self.flush_deferred_regs(now_ms)?;
        self.sweep_retiring()
    }

    /// Decommissions retired groups' instances once no query is in flight
    /// on them, returning their nodes to the free pool.
    fn sweep_retiring(&mut self) -> ThriftyResult<()> {
        if self.retiring.is_empty() {
            return Ok(());
        }
        let busy: BTreeSet<usize> = self.inflight.values().map(|i| i.group).collect();
        let now_ms = self.cluster.now().as_ms();
        let mut still = Vec::with_capacity(self.retiring.len());
        let retiring = std::mem::take(&mut self.retiring);
        for gi in retiring {
            if busy.contains(&gi) {
                still.push(gi);
                continue;
            }
            let instances = std::mem::take(&mut self.groups[gi].instances);
            for inst in instances {
                self.cluster.decommission(inst)?;
                if self.telemetry.is_enabled() {
                    let at_ms = self.log_ms(now_ms);
                    self.telemetry.incr("instances.decommissioned");
                    self.telemetry
                        .record(TelemetryEvent::InstanceDecommissioned {
                            at_ms,
                            instance: inst,
                        });
                }
            }
        }
        self.retiring = still;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Cycle-planner inputs and lifecycle introspection.
    // ------------------------------------------------------------------

    /// The per-tenant busy intervals observed in the monitoring window,
    /// shifted to a window-relative timeline — exactly the activity shape
    /// [`DeploymentAdvisor`](crate::advisor::DeploymentAdvisor) consumes.
    /// Every live tenant appears (idle ones with no intervals); the second
    /// element is the window length in ms (the advisor's horizon).
    pub fn observed_activity_intervals(&self) -> (Vec<ObservedHistory>, u64) {
        self.observed_activity_intervals_in(self.config.monitor_window_ms)
    }

    /// [`ThriftyService::observed_activity_intervals`] over an explicit
    /// lookback. The effective window is clamped to the configured
    /// monitoring window (older activity has been discarded, so a longer
    /// request would report phantom idleness) and to the service uptime
    /// (a young service must not plan from a partially-empty horizon that
    /// biases every tenant toward looking idle).
    pub fn observed_activity_intervals_in(&self, window_ms: u64) -> (Vec<ObservedHistory>, u64) {
        let now = self.cluster.now().as_ms();
        let start = now
            .saturating_sub(window_ms.min(self.config.monitor_window_ms).max(1))
            .max(self.offset_ms);
        let horizon = now.saturating_sub(start).max(1);
        let mut per_tenant: BTreeMap<TenantId, Vec<(u64, u64)>> =
            self.tenant_info.keys().map(|&t| (t, Vec::new())).collect();
        for (gi, group) in self.groups.iter().enumerate() {
            if group.retired {
                continue;
            }
            for (tenant, intervals) in group.monitor.window_activity(now) {
                // Only the group currently *serving* the tenant contributes;
                // a drained old group's residual intervals would double
                // count the tenant's activity.
                if self.tenant_group.get(&tenant) != Some(&gi) {
                    continue;
                }
                let Some(out) = per_tenant.get_mut(&tenant) else {
                    continue;
                };
                for (s, e) in intervals {
                    let s = s.max(start);
                    let e = e.max(s);
                    if e > s {
                        out.push((s - start, e - start));
                    }
                }
            }
        }
        let activity = per_tenant
            .into_iter()
            .map(|(t, iv)| TenantHistory::new(self.tenant_info[&t], iv))
            .collect();
        (activity, horizon)
    }

    /// The observed RT-TTP of a live (non-retired) group at the current
    /// instant — the fraction of the monitoring window during which at
    /// most `R` of its tenants were concurrently active. `None` for
    /// retired or unknown group indices.
    pub fn group_rt_ttp(&self, gi: usize) -> Option<f64> {
        let g = self.groups.get(gi)?;
        if g.retired {
            return None;
        }
        Some(g.monitor.rt_ttp(self.cluster.now().as_ms()))
    }

    /// Bumps a controller-decision counter (crate-internal: the
    /// [`Reconsolidator`](crate::reconsolidation::Reconsolidator) has no
    /// telemetry of its own, so its decisions land in the service's).
    pub(crate) fn note_controller(&mut self, counter: &'static str, by: u64) {
        if self.telemetry.is_enabled() && by > 0 {
            self.telemetry.incr_by(counter, by);
        }
    }

    /// Records a controller cadence adaptation (crate-internal).
    pub(crate) fn note_controller_adapted(&mut self, interval_ms: u64, window_ms: u64, error: f64) {
        if self.telemetry.is_enabled() {
            let at_ms = self.log_now().as_ms();
            self.telemetry.record(TelemetryEvent::ControllerAdapted {
                at_ms,
                interval_ms,
                window_ms,
                error_ppm: (error.clamp(0.0, 1.0) * 1_000_000.0) as u64,
            });
        }
    }

    /// Whether a re-consolidation cycle is currently executing.
    pub fn reconsolidation_active(&self) -> bool {
        self.recon.is_some()
    }

    /// Completed re-consolidation cycles.
    pub fn reconsolidation_cycles(&self) -> u64 {
        self.cycles_completed
    }

    /// Whether any registration is still bulk loading toward its park
    /// group or deferred behind a cycle (cycles cannot start until these
    /// land).
    pub fn has_pending_registrations(&self) -> bool {
        !self.pending_parks.is_empty() || !self.deferred_regs.is_empty()
    }

    /// Ids of all live (routable) tenants, ascending.
    pub fn live_tenants(&self) -> Vec<TenantId> {
        self.tenant_info.keys().copied().collect()
    }

    /// Whether a tenant is parked on a tuning MPPDB awaiting placement.
    pub fn is_parked(&self, tenant: TenantId) -> bool {
        self.parked.contains(&tenant)
    }

    /// Whether group `gi` has been retired by a re-consolidation cycle.
    pub fn group_is_retired(&self, gi: usize) -> bool {
        self.groups.get(gi).is_some_and(|g| g.retired)
    }

    /// The tenants group `gi` currently serves (ids ascending).
    pub fn group_members(&self, gi: usize) -> Option<Vec<TenantId>> {
        self.groups.get(gi).map(|g| {
            let mut ids: Vec<TenantId> = g.members.iter().map(|m| m.id).collect();
            ids.sort_unstable();
            ids
        })
    }

    /// The MPPDB node size (`n_1`) of group `gi`.
    pub fn group_node_size(&self, gi: usize) -> Option<u32> {
        self.groups.get(gi).map(|g| g.node_size)
    }

    /// Whether group `gi` is a scale-out child created by elastic scaling.
    pub fn group_is_scale_out(&self, gi: usize) -> bool {
        self.groups.get(gi).is_some_and(|g| g.parent.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::TenantGroupPlan;
    use mppdb_sim::query::TemplateId;

    fn linear_template() -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), 600.0, 0.0)
    }

    fn two_tenant_plan(a: u32) -> DeploymentPlan {
        DeploymentPlan {
            groups: vec![TenantGroupPlan::new(
                vec![
                    Tenant::new(TenantId(0), 2, 200.0),
                    Tenant::new(TenantId(1), 2, 200.0),
                ],
                a,
                2,
            )],
        }
    }

    fn service(a: u32, scaling: bool) -> ThriftyService {
        let config = ServiceConfig::builder()
            .elastic_scaling(scaling)
            .build()
            .unwrap();
        ThriftyService::deploy(&two_tenant_plan(a), 16, [linear_template()], config).unwrap()
    }

    fn q(tenant: u32, submit_s: u64, baseline_ms: u64) -> IncomingQuery {
        IncomingQuery {
            tenant: TenantId(tenant),
            submit: SimTime::from_secs(submit_s),
            template: TemplateId(1),
            baseline: SimDuration::from_ms(baseline_ms),
        }
    }

    #[test]
    fn disjoint_tenants_meet_their_slas() {
        let mut s = service(2, false);
        // Dedicated latency of the template on a 2-node MPPDB over 200 GB:
        // 600 * 200 / 2 = 60 000 ms. Submissions far apart.
        let report = s
            .replay([q(0, 0, 60_000), q(1, 100, 60_000), q(0, 200, 60_000)])
            .unwrap();
        assert_eq!(report.summary.total, 3);
        assert_eq!(report.summary.met, 3);
        assert!(report.scaling_events.is_empty());
        for r in &report.records {
            assert!((r.normalized - 1.0).abs() < 0.01, "{r:?}");
        }
    }

    #[test]
    fn concurrent_tenants_use_separate_replicas() {
        let mut s = service(2, false);
        // Both tenants submit at t = 0: Algorithm 1 sends them to different
        // MPPDBs, so both finish at dedicated speed.
        let report = s.replay([q(0, 0, 60_000), q(1, 0, 60_000)]).unwrap();
        assert_eq!(report.summary.met, 2);
        let groups: Vec<RouteKind> = report.records.iter().map(|r| r.route).collect();
        assert!(groups.contains(&RouteKind::TuningFree));
        assert!(groups.contains(&RouteKind::OtherFree));
    }

    #[test]
    fn overflow_violates_sla_with_one_replica() {
        let mut s = service(1, false);
        // One MPPDB for two tenants active together: the second query
        // overflows onto the busy instance and both slow down 2x.
        let report = s.replay([q(0, 0, 60_000), q(1, 0, 60_000)]).unwrap();
        assert_eq!(report.summary.total, 2);
        assert_eq!(report.summary.met, 0);
        assert!(report
            .records
            .iter()
            .any(|r| r.route == RouteKind::Overflow));
        assert!(report.summary.worst_normalized > 1.5);
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let mut s = service(2, false);
        let err = s.replay([q(9, 0, 1_000)]).unwrap_err();
        assert_eq!(err, ThriftyError::UnknownTenant(TenantId(9)));
    }

    #[test]
    fn unknown_template_is_rejected() {
        let mut s = service(2, false);
        let err = s
            .replay([IncomingQuery {
                tenant: TenantId(0),
                submit: SimTime::ZERO,
                template: TemplateId(77),
                baseline: SimDuration::SECOND,
            }])
            .unwrap_err();
        assert_eq!(err, ThriftyError::UnknownTemplate(TemplateId(77)));
    }

    #[test]
    fn log_epoch_is_deployment_ready_time() {
        let s = service(2, false);
        assert!(s.log_epoch() > SimTime::ZERO);
        assert_eq!(s.group_count(), 1);
        assert_eq!(s.group_of(TenantId(0)), Some(0));
        assert_eq!(s.group_of(TenantId(9)), None);
    }

    #[test]
    fn elastic_scaling_moves_an_over_active_tenant() {
        // One replica (A = 1), two tenants. Tenant 0 hammers the group with
        // back-to-back queries while tenant 1 submits periodically: the
        // RT-TTP collapses, tenant 0 is identified as over-active, and a
        // scale-out MPPDB takes it over.
        let config = ServiceConfig::builder()
            .elastic_scaling(true)
            .monitor_window_ms(24 * 3_600_000)
            .scaling_check_interval_ms(10_000)
            .build()
            .unwrap();
        let mut s =
            ThriftyService::deploy(&two_tenant_plan(1), 16, [linear_template()], config).unwrap();
        // Baseline 60 s queries. Tenant 0 submits every 50 s (continuously
        // active), tenant 1 every 400 s.
        let mut queries = Vec::new();
        for k in 0..200u64 {
            queries.push(q(0, k * 50, 60_000));
        }
        for k in 0..25u64 {
            queries.push(q(1, 40 + k * 400, 60_000));
        }
        queries.sort_by_key(|e| e.submit);
        let report = s.replay(queries).unwrap();
        assert!(
            !report.scaling_events.is_empty(),
            "scaling must have triggered"
        );
        let ev = &report.scaling_events[0];
        assert_eq!(ev.over_active, vec![TenantId(0)]);
        assert!(ev.ready_at.is_some(), "the scale-out MPPDB must go ready");
        // After activation the hammering tenant is served by the new group.
        assert_eq!(s.group_of(TenantId(0)), Some(1));
        assert_eq!(s.group_of(TenantId(1)), Some(0));
        assert_eq!(s.group_count(), 2);
    }

    #[test]
    fn replay_drains_and_into_report_consumes() {
        let mut s = service(2, false);
        let first = s.replay([q(0, 0, 60_000)]).unwrap();
        assert_eq!(first.records.len(), 1);
        // 2 InstanceProvisioned + QuerySubmitted + QueryRouted + QueryCompleted.
        assert_eq!(first.telemetry.events.len(), 5);
        let second = s.replay([q(1, 1_000, 60_000)]).unwrap();
        assert_eq!(second.records.len(), 1, "first segment was drained");
        assert_eq!(
            second.telemetry.counter("queries.submitted"),
            2,
            "registry counters stay cumulative across segments"
        );
        let mut s2 = service(2, false);
        s2.submit(q(0, 0, 60_000)).unwrap();
        let report = s2.into_report().unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.summary.met, 1);
    }

    #[test]
    fn telemetry_counters_reconcile_with_records() {
        let mut s = service(2, false);
        let report = s
            .replay([q(0, 0, 60_000), q(1, 0, 60_000), q(0, 200, 60_000)])
            .unwrap();
        let t = &report.telemetry;
        assert!(t.enabled);
        assert_eq!(t.counter("queries.submitted"), 3);
        assert_eq!(t.counter("queries.completed"), 3);
        assert_eq!(t.counter("queries.cancelled"), 0);
        assert_eq!(
            t.counter("sla.met") + t.counter("sla.violated"),
            report.summary.total as u64
        );
        assert_eq!(t.counter("instances.provisioned"), 2);
        assert!(!t.instances.is_empty());
        assert_eq!(t.histograms["query.latency_ms"].count, 3);
    }

    #[test]
    fn disabled_telemetry_yields_empty_snapshot() {
        let config = ServiceConfig::builder()
            .elastic_scaling(false)
            .telemetry(TelemetryConfig::disabled())
            .build()
            .unwrap();
        let mut s =
            ThriftyService::deploy(&two_tenant_plan(2), 16, [linear_template()], config).unwrap();
        let report = s.replay([q(0, 0, 60_000)]).unwrap();
        assert_eq!(report.summary.total, 1, "service behaviour is unchanged");
        assert!(!report.telemetry.enabled);
        assert!(report.telemetry.counters.is_empty());
        assert!(report.telemetry.events.is_empty());
        assert!(report.telemetry.instances.is_empty());
    }

    #[test]
    fn trace_sampling_produces_monotone_timestamps() {
        let config = ServiceConfig::builder()
            .elastic_scaling(false)
            .trace(TraceConfig::new(vec![0], 100_000))
            .build()
            .unwrap();
        let mut s =
            ThriftyService::deploy(&two_tenant_plan(2), 16, [linear_template()], config).unwrap();
        let report = s
            .replay([q(0, 0, 60_000), q(1, 500, 60_000), q(0, 1_000, 60_000)])
            .unwrap();
        assert!(!report.ttp_trace.is_empty());
        for w in report.ttp_trace.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
        assert!(report
            .ttp_trace
            .iter()
            .all(|s| s.rt_ttp >= 0.0 && s.rt_ttp <= 1.0));
    }
}
