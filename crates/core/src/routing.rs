//! Query routing (Algorithm 1, Chapter 4.3).
//!
//! The TDD routes an **active tenant** — not individual queries — to one
//! MPPDB and lets that MPPDB exclusively process all of the tenant's
//! (possibly concurrent) queries until the tenant becomes inactive. A
//! tenant is *inactive* the moment none of its queries is executing
//! anywhere (the "strong notion of inactive").
//!
//! ```text
//! route(tenant, query):
//!   1. if the tenant has queries running on MPPDB_x      -> MPPDB_x
//!   2. else if MPPDB_0 is free                           -> MPPDB_0
//!   3. else if some MPPDB_j is free                      -> MPPDB_j
//!   4. else                                              -> MPPDB_0 (concurrent)
//! ```
//!
//! The router is a pure bookkeeping state machine over the `A` MPPDBs of
//! one tenant-group: the service layer tells it when queries start and
//! finish, and it answers routing decisions. Keeping it free of simulator
//! types makes Algorithm 1 unit-testable exactly as the paper walks through
//! it (Figure 4.2).

use crate::error::{ThriftyError, ThriftyResult};
use crate::tenant::TenantId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of an MPPDB within one tenant-group (0 = the tuning MPPDB).
pub type MppdbIndex = usize;

/// Routing decisions, annotated with which rule of Algorithm 1 fired —
/// useful for tests and for the Tenant Activity Monitor (rule 4 hits are
/// exactly the moments the SLA is at risk).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteKind {
    /// Rule 1: the tenant is already being served there.
    Sticky,
    /// Rule 2: MPPDB_0 was free.
    TuningFree,
    /// Rule 3: some other MPPDB was free.
    OtherFree,
    /// Rule 4: everything busy; concurrent processing on MPPDB_0.
    Overflow,
}

/// A routing decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Which MPPDB of the group receives the query.
    pub mppdb: MppdbIndex,
    /// Which rule produced the decision.
    pub kind: RouteKind,
}

/// Algorithm 1 state for one tenant-group with `A` MPPDBs.
#[derive(Clone, Debug)]
pub struct QueryRouter {
    /// `running[j][tenant]` = number of that tenant's queries currently
    /// executing on MPPDB `j`. Ordered maps: routing state is part of the
    /// replay-determinism contract (lint rule L1).
    running: Vec<BTreeMap<TenantId, u32>>,
    /// Per-tenant total across all MPPDBs, maintained incrementally so the
    /// per-submit hot path never rescans `running`.
    tenant_totals: BTreeMap<TenantId, u32>,
    /// Number of distinct tenants with at least one running query.
    distinct_active: usize,
}

impl QueryRouter {
    /// Creates a router over `a` MPPDBs.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    pub fn new(a: usize) -> Self {
        assert!(a >= 1, "a tenant-group has at least one MPPDB");
        QueryRouter {
            running: vec![BTreeMap::new(); a],
            tenant_totals: BTreeMap::new(),
            distinct_active: 0,
        }
    }

    /// Number of MPPDBs (`A`).
    pub fn mppdb_count(&self) -> usize {
        self.running.len()
    }

    /// Whether MPPDB `j` currently executes no queries — "free" in the
    /// paper's sense.
    pub fn is_free(&self, j: MppdbIndex) -> bool {
        self.running[j].is_empty()
    }

    /// The MPPDB currently serving `tenant`, if any (rule 1 state).
    pub fn serving(&self, tenant: TenantId) -> Option<MppdbIndex> {
        self.running
            .iter()
            .position(|m| m.get(&tenant).copied().unwrap_or(0) > 0)
    }

    /// Number of distinct tenants with at least one running query in the
    /// group — the group's concurrent-active count. O(1): maintained
    /// incrementally by [`QueryRouter::route`] / [`QueryRouter::complete`].
    pub fn active_tenants(&self) -> usize {
        self.distinct_active
    }

    /// Routes a query per Algorithm 1 and records it as running on the
    /// chosen MPPDB.
    pub fn route(&mut self, tenant: TenantId) -> Route {
        let decision = self.peek_route(tenant);
        *self.running[decision.mppdb].entry(tenant).or_insert(0) += 1;
        let total = self.tenant_totals.entry(tenant).or_insert(0);
        if *total == 0 {
            self.distinct_active += 1;
        }
        *total += 1;
        decision
    }

    /// Computes the routing decision without recording the query.
    pub fn peek_route(&self, tenant: TenantId) -> Route {
        // Rule 1: stickiness while the tenant is active.
        if let Some(j) = self.serving(tenant) {
            return Route {
                mppdb: j,
                kind: RouteKind::Sticky,
            };
        }
        // Rule 2: MPPDB_0 if free.
        if self.is_free(0) {
            return Route {
                mppdb: 0,
                kind: RouteKind::TuningFree,
            };
        }
        // Rule 3: first free MPPDB.
        if let Some(j) = (1..self.running.len()).find(|&j| self.is_free(j)) {
            return Route {
                mppdb: j,
                kind: RouteKind::OtherFree,
            };
        }
        // Rule 4: concurrent processing on the tuning MPPDB.
        Route {
            mppdb: 0,
            kind: RouteKind::Overflow,
        }
    }

    /// Records the completion of one of `tenant`'s queries on MPPDB `j`.
    ///
    /// # Errors
    /// [`ThriftyError::NoRunningQuery`] if no such query is running (a
    /// bookkeeping error in the caller).
    pub fn complete(&mut self, j: MppdbIndex, tenant: TenantId) -> ThriftyResult<()> {
        let Some(count) = self.running[j].get_mut(&tenant) else {
            return Err(ThriftyError::NoRunningQuery {
                component: "router",
                tenant,
            });
        };
        *count -= 1;
        if *count == 0 {
            self.running[j].remove(&tenant);
        }
        let Some(total) = self.tenant_totals.get_mut(&tenant) else {
            return Err(ThriftyError::Internal(
                "tenant_totals must track every running query",
            ));
        };
        *total -= 1;
        if *total == 0 {
            self.tenant_totals.remove(&tenant);
            self.distinct_active -= 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TenantId = TenantId(1);
    const T2: TenantId = TenantId(2);
    const T4: TenantId = TenantId(4);
    const T9: TenantId = TenantId(9);

    /// The full walk-through of Figure 4.2 (Chapter 4.3).
    #[test]
    fn figure_4_2_walkthrough() {
        let mut r = QueryRouter::new(3);

        // Q1: T4 becomes active; all MPPDBs free -> MPPDB_0 (rule 2).
        let q1 = r.route(T4);
        assert_eq!((q1.mppdb, q1.kind), (0, RouteKind::TuningFree));

        // Q2: T2 active; MPPDB_0 busy with T4 -> a free MPPDB (rule 3).
        let q2 = r.route(T2);
        assert_eq!((q2.mppdb, q2.kind), (1, RouteKind::OtherFree));

        // Q3: T4 submits while Q1 still runs -> sticky to MPPDB_0 (rule 1).
        let q3 = r.route(T4);
        assert_eq!((q3.mppdb, q3.kind), (0, RouteKind::Sticky));

        // Q4: T2 submits while Q2 still runs -> sticky to MPPDB_1.
        let q4 = r.route(T2);
        assert_eq!((q4.mppdb, q4.kind), (1, RouteKind::Sticky));

        // Q5: T9 becomes active -> the remaining free MPPDB_2 (rule 3).
        let q5 = r.route(T9);
        assert_eq!((q5.mppdb, q5.kind), (2, RouteKind::OtherFree));
        assert_eq!(r.active_tenants(), 3);

        // T4 finishes Q1 and Q3: MPPDB_0 becomes free.
        r.complete(0, T4).unwrap();
        r.complete(0, T4).unwrap();
        assert!(r.is_free(0));

        // Q6: T1 becomes active -> MPPDB_0 (rule 2).
        let q6 = r.route(T1);
        assert_eq!((q6.mppdb, q6.kind), (0, RouteKind::TuningFree));

        // Q7: T4 again, after its earlier queries finished. Not sticky any
        // more; MPPDB_0 busy with T1, MPPDB_1 busy with T2 -> ... MPPDB_2 is
        // busy with T9 too, so in the paper Q7 goes to MPPDB_1? No: the
        // paper routes Q7 to a *free* MPPDB (T2's queries had finished by
        // then). Mirror that: complete T2's queries first.
        r.complete(1, T2).unwrap();
        r.complete(1, T2).unwrap();
        let q7 = r.route(T4);
        assert_eq!((q7.mppdb, q7.kind), (1, RouteKind::OtherFree));

        // Q8: T1 submits right after Q6 finished ("short think time"): T1 is
        // momentarily inactive, so Q8 need not follow Q6 — but with MPPDB_1
        // and MPPDB_2 busy and MPPDB_0 free, it lands on MPPDB_0 again.
        r.complete(0, T1).unwrap();
        let q8 = r.route(T1);
        assert_eq!((q8.mppdb, q8.kind), (0, RouteKind::TuningFree));
    }

    #[test]
    fn overflow_goes_to_tuning_mppdb() {
        let mut r = QueryRouter::new(2);
        r.route(T1);
        r.route(T2);
        // Third distinct active tenant: everything busy -> rule 4.
        let q = r.route(T4);
        assert_eq!((q.mppdb, q.kind), (0, RouteKind::Overflow));
        assert_eq!(r.active_tenants(), 3);
    }

    #[test]
    fn stickiness_beats_free_instances() {
        let mut r = QueryRouter::new(3);
        r.route(T1); // MPPDB_0
        let q = r.route(T1);
        assert_eq!((q.mppdb, q.kind), (0, RouteKind::Sticky));
        assert!(r.is_free(1) && r.is_free(2));
    }

    #[test]
    fn completion_releases_the_instance() {
        let mut r = QueryRouter::new(2);
        r.route(T1);
        assert!(!r.is_free(0));
        assert_eq!(r.serving(T1), Some(0));
        r.complete(0, T1).unwrap();
        assert!(r.is_free(0));
        assert_eq!(r.serving(T1), None);
        assert_eq!(r.active_tenants(), 0);
    }

    #[test]
    fn completing_unknown_query_is_an_error() {
        let mut r = QueryRouter::new(2);
        assert_eq!(
            r.complete(0, T1),
            Err(ThriftyError::NoRunningQuery {
                component: "router",
                tenant: T1
            })
        );
    }

    #[test]
    fn active_count_stays_consistent_with_a_recount() {
        // The incremental distinct-active count must agree with a from-
        // scratch recount of the bookkeeping after every operation.
        let recount = |r: &QueryRouter| {
            let mut seen: Vec<TenantId> =
                r.running.iter().flat_map(|m| m.keys().copied()).collect();
            seen.sort_unstable();
            seen.dedup();
            seen.len()
        };
        let mut r = QueryRouter::new(2);
        let mut placed: Vec<(MppdbIndex, TenantId)> = Vec::new();
        for t in [T1, T2, T4, T1, T9, T2, T1] {
            placed.push((r.route(t).mppdb, t));
            assert_eq!(r.active_tenants(), recount(&r));
        }
        while let Some((j, t)) = placed.pop() {
            r.complete(j, t).unwrap();
            assert_eq!(r.active_tenants(), recount(&r));
        }
        assert_eq!(r.active_tenants(), 0);
    }

    #[test]
    fn peek_does_not_mutate() {
        let r = QueryRouter::new(2);
        let a = r.peek_route(T1);
        let b = r.peek_route(T1);
        assert_eq!(a, b);
        assert!(r.is_free(0));
    }
}
