//! Tenants as seen by the Thrifty core.

use serde::{Deserialize, Serialize};

/// Tenant identity. Shared with the simulator (`mppdb_sim::query::SimTenantId`)
/// so no id mapping is needed across layers.
pub use mppdb_sim::query::SimTenantId as TenantId;

/// A tenant of the MPPDBaaS: its identity, the parallelism it requested and
/// pays for, and its data volume.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// Identity.
    pub id: TenantId,
    /// Number of MPPDB nodes requested (`n_i`). This is both the tenant's
    /// SLA reference ("as fast as a dedicated `n_i`-node MPPDB") and the
    /// basis of Thrifty's pricing model.
    pub nodes: u32,
    /// Total data volume in GB, partitioned across the requested nodes.
    pub data_gb: f64,
}

impl Tenant {
    /// Creates a tenant.
    ///
    /// # Panics
    /// Panics if `nodes` is zero or `data_gb` is not finite and positive.
    pub fn new(id: TenantId, nodes: u32, data_gb: f64) -> Self {
        assert!(nodes > 0, "a tenant must request at least one node");
        assert!(
            data_gb.is_finite() && data_gb > 0.0,
            "data_gb must be finite and positive"
        );
        Tenant { id, nodes, data_gb }
    }
}

/// One tenant's activity history: the tenant plus its merged busy
/// intervals `(start_ms, end_ms)` on the history timeline.
///
/// This is the input shape of the
/// [`DeploymentAdvisor`](crate::advisor::DeploymentAdvisor) and of the
/// re-consolidation planner's monitoring window — everywhere the system
/// needs "who was busy when". Intervals are half-open `[start, end)`
/// milliseconds relative to the start of the observation horizon, sorted
/// and disjoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantHistory {
    /// The tenant the intervals belong to.
    pub tenant: Tenant,
    /// Merged busy intervals in horizon-relative milliseconds.
    pub intervals: Vec<(u64, u64)>,
}

impl TenantHistory {
    /// Pairs a tenant with its busy intervals.
    pub fn new(tenant: Tenant, intervals: Vec<(u64, u64)>) -> Self {
        TenantHistory { tenant, intervals }
    }
}

impl From<(Tenant, Vec<(u64, u64)>)> for TenantHistory {
    fn from((tenant, intervals): (Tenant, Vec<(u64, u64)>)) -> Self {
        TenantHistory { tenant, intervals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let t = Tenant::new(TenantId(1), 4, 400.0);
        assert_eq!(t.nodes, 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Tenant::new(TenantId(1), 0, 400.0);
    }

    #[test]
    #[should_panic(expected = "data_gb")]
    fn bad_data_rejected() {
        let _ = Tenant::new(TenantId(1), 2, f64::NAN);
    }
}
