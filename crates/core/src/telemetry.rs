//! Deterministic service telemetry: named metrics plus a structured event
//! stream.
//!
//! The service loop (and the simulated cluster underneath it) is a black
//! box without this module: the only outputs are the final SLA records.
//! Telemetry opens the hot paths — query routing, completions, elastic
//! scaling, node failures — as:
//!
//! * a [`Registry`] of named **counters**, **gauges**, and log-scale
//!   **histograms** (power-of-two buckets, so recording is two integer
//!   additions and a branch), and
//! * a bounded stream of [`TelemetryEvent`]s, each stamped with its
//!   **log-timeline** instant in milliseconds.
//!
//! ## Determinism contract
//!
//! Every recorded value derives from *simulated* time and simulated state —
//! never from `Instant::now()` or any other wall-clock source. Two replays
//! of the same log therefore produce byte-identical
//! [`TelemetrySnapshot`]s, which is what lets `tests/determinism.rs`
//! compare serialized reports across thread counts.
//!
//! ## Overhead contract
//!
//! With [`TelemetryConfig::disabled`] every recording call is a single
//! branch on [`Telemetry::is_enabled`]; no allocation, no map lookup, no
//! event push. The `sim_engine` bench exercises the cluster without any
//! core-side telemetry at all.

use crate::routing::RouteKind;
use crate::tenant::TenantId;
use mppdb_sim::instance::{InstanceId, MppdbInstance};
use mppdb_sim::node::NodeId;
use mppdb_sim::query::QueryId;
use mppdb_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Telemetry recording policy.
///
/// Construct via [`TelemetryConfig::default`] (everything on),
/// [`TelemetryConfig::counters_only`], or [`TelemetryConfig::disabled`];
/// the struct is `#[non_exhaustive]` so new knobs can land without
/// breaking callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct TelemetryConfig {
    /// Master switch. Off = every recording call is a no-op.
    pub enabled: bool,
    /// Whether individual [`TelemetryEvent`]s are kept (counters and
    /// histograms are always maintained while `enabled`).
    pub record_events: bool,
    /// Maximum number of retained events; once reached, further events
    /// are counted in [`TelemetrySnapshot::dropped_events`] instead of
    /// stored. Bounds memory on multi-day replays.
    pub event_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            record_events: true,
            event_capacity: 1 << 20,
        }
    }
}

impl TelemetryConfig {
    /// Counters, gauges, and histograms only — no per-event records.
    pub fn counters_only() -> Self {
        TelemetryConfig {
            record_events: false,
            event_capacity: 0,
            ..TelemetryConfig::default()
        }
    }

    /// Telemetry fully off: every recording call reduces to one branch.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            record_events: false,
            event_capacity: 0,
        }
    }

    /// Caps the retained event stream at `capacity` events.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }
}

/// A log-scale histogram with power-of-two buckets.
///
/// Bucket 0 holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Recording is O(1) and allocation-free once the
/// bucket vector has grown to the largest observed magnitude.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound for the `q`-quantile (`0.0 ..= 1.0`): the inclusive
    /// upper edge of the bucket containing the rank-`⌈q·count⌉`
    /// observation, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Freezes the histogram into its serializable form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self.buckets.clone(),
        }
    }
}

/// Serializable summary of one [`Histogram`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median upper bound (bucket resolution).
    pub p50: u64,
    /// 95th-percentile upper bound (bucket resolution).
    pub p95: u64,
    /// 99th-percentile upper bound (bucket resolution).
    pub p99: u64,
    /// Raw power-of-two bucket counts (see [`Histogram`]).
    pub buckets: Vec<u64>,
}

/// A registry of named metrics. Names are `.`-separated lowercase paths
/// (e.g. `"queries.submitted"`, `"route.overflow"`); the `BTreeMap`
/// backing keeps iteration — and therefore serialization — in
/// deterministic name order.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increments a counter by 1.
    pub fn incr(&mut self, name: &str) {
        self.incr_by(name, 1);
    }

    /// Increments a counter by `n`. Allocates only on the first use of a
    /// name.
    pub fn incr_by(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records an observation into a named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// A named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// One structured event on the service's **log timeline** (`at_ms` is
/// milliseconds since the deployment went live). Variants mirror the
/// operational vocabulary of the paper's run-time chapters; the enum is
/// `#[non_exhaustive]` so new event kinds can be added without breaking
/// downstream matches.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TelemetryEvent {
    /// A query entered the service.
    QuerySubmitted {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Engine-assigned query id.
        query: QueryId,
        /// Submitting tenant.
        tenant: TenantId,
        /// Tenant-group serving the tenant.
        group: usize,
    },
    /// Algorithm 1 placed a query on an MPPDB.
    QueryRouted {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Engine-assigned query id.
        query: QueryId,
        /// Submitting tenant.
        tenant: TenantId,
        /// Tenant-group serving the tenant.
        group: usize,
        /// Index of the chosen MPPDB within the group (0 = tuning MPPDB).
        mppdb: usize,
        /// Which routing rule fired (overflow = concurrent processing).
        kind: RouteKind,
    },
    /// A query finished and was graded against its SLA.
    QueryCompleted {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Engine-assigned query id.
        query: QueryId,
        /// Submitting tenant.
        tenant: TenantId,
        /// Tenant-group that served the query.
        group: usize,
        /// Achieved latency in ms (from first submission).
        latency_ms: u64,
        /// Whether the SLA was met.
        met: bool,
    },
    /// A query was cancelled (elastic scaling migrates it by cancelling
    /// and resubmitting on the scale-out MPPDB).
    QueryCancelled {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Engine-assigned query id.
        query: QueryId,
        /// Submitting tenant.
        tenant: TenantId,
        /// Tenant-group the query was cancelled in.
        group: usize,
    },
    /// A group's RT-TTP fell below `P` and over-active tenants were
    /// identified (Chapter 5.1); a scale-out MPPDB starts loading.
    ScalingTriggered {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The group scaling out.
        group: usize,
        /// Number of over-active tenants selected to move.
        tenants: usize,
    },
    /// The scale-out MPPDB finished loading and took over its tenants.
    ScalingActivated {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The parent group.
        group: usize,
        /// The freshly created scale-out group.
        new_group: usize,
    },
    /// An MPPDB instance was provisioned (start-up + bulk load began).
    InstanceProvisioned {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The new instance.
        instance: InstanceId,
        /// Node count of the instance.
        nodes: usize,
    },
    /// An MPPDB instance was decommissioned and its nodes returned to the
    /// hibernated pool.
    InstanceDecommissioned {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The decommissioned instance.
        instance: InstanceId,
    },
    /// A node failed; the owning instance (if any) stays online at
    /// reduced parallelism (Chapter 4.4).
    NodeFailed {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The failed node.
        node: NodeId,
        /// The instance it served, if any.
        instance: Option<InstanceId>,
    },
    /// A replacement node joined an instance, restoring its parallelism.
    NodeReplaced {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The restored instance.
        instance: InstanceId,
        /// The replacement node.
        node: NodeId,
    },
    /// A node failed while the free pool was empty: the replacement is
    /// queued until nodes return to the pool, and the instance runs
    /// degraded in the meantime.
    ReplacementDeferred {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The degraded instance awaiting a spare.
        instance: InstanceId,
        /// The failed node still awaiting replacement.
        node: NodeId,
    },
    /// A queued (or interrupted) replacement was re-attempted: a spare
    /// began starting up for the degraded instance.
    ReplacementRetried {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The instance being repaired.
        instance: InstanceId,
        /// The spare node now starting as the replacement.
        node: NodeId,
    },
    /// Elastic scaling moved a tenant to a scale-out group.
    TenantMigrated {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The moved tenant.
        tenant: TenantId,
        /// The group it left.
        from_group: usize,
        /// The scale-out group now serving it.
        to_group: usize,
    },
    /// A tenant registered with the live service; its data starts bulk
    /// loading onto the park group's tuning MPPDB (Chapter 5.1: new
    /// tenants wait there until the next consolidation cycle).
    TenantRegistered {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The new tenant.
        tenant: TenantId,
    },
    /// A tenant deregistered; its replicas were dropped in place and it
    /// leaves the next consolidation cycle's population.
    TenantDeregistered {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The departed tenant.
        tenant: TenantId,
    },
    /// A bulk load of one tenant's data onto one instance began (Table 5.1
    /// delays; the old deployment keeps serving while it runs).
    BulkLoadStarted {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The target instance.
        instance: InstanceId,
        /// The tenant being loaded.
        tenant: TenantId,
    },
    /// A bulk load finished; the tenant is queryable on the instance.
    BulkLoadFinished {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The target instance.
        instance: InstanceId,
        /// The loaded tenant.
        tenant: TenantId,
    },
    /// An online re-consolidation cycle began: replacement tenant-groups
    /// start provisioning and bulk loading while the old deployment serves.
    ReconsolidationStarted {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Monotone cycle number (1-based).
        cycle: u64,
        /// Tenant-groups being built.
        builds: usize,
        /// Old tenant-groups scheduled to retire at the end of the cycle.
        retiring: usize,
    },
    /// The re-consolidation cycle finished: every group cut over, stale
    /// replicas dropped, retired instances queued for decommission.
    ReconsolidationCompleted {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Monotone cycle number (1-based).
        cycle: u64,
        /// Tenant-groups built by the cycle.
        groups_built: usize,
        /// Old tenant-groups retired by the cycle.
        groups_retired: usize,
    },
    /// Routing for one tenant-group atomically cut over to its freshly
    /// loaded replicas; queries in flight finish on their old instance.
    GroupCutover {
        /// Log-time instant in ms.
        at_ms: u64,
        /// The new tenant-group index.
        group: usize,
        /// Tenants now served by the new group.
        tenants: usize,
        /// Replica count (the plan's `A`) of the new group.
        replicas: usize,
    },
    /// The re-consolidation feedback controller adapted its cadence from
    /// the measured RT-TTP prediction error.
    ControllerAdapted {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Cycle period after the adaptation.
        interval_ms: u64,
        /// Observation window after the adaptation (`0` = the service's
        /// full monitoring window).
        window_ms: u64,
        /// The error that drove the adaptation, in parts per million.
        error_ppm: u64,
    },
    /// A configuration hot-reload was applied to the live service (see
    /// [`ThriftyService::apply_config`](crate::service::ThriftyService::apply_config)).
    ConfigReloaded {
        /// Log-time instant in ms.
        at_ms: u64,
        /// Knob changes applied live.
        applied: usize,
        /// Knob changes rejected as deploy-time-only.
        rejected: usize,
    },
}

impl TelemetryEvent {
    /// The log-time instant of the event in ms.
    pub fn at_ms(&self) -> u64 {
        match *self {
            TelemetryEvent::QuerySubmitted { at_ms, .. }
            | TelemetryEvent::QueryRouted { at_ms, .. }
            | TelemetryEvent::QueryCompleted { at_ms, .. }
            | TelemetryEvent::QueryCancelled { at_ms, .. }
            | TelemetryEvent::ScalingTriggered { at_ms, .. }
            | TelemetryEvent::ScalingActivated { at_ms, .. }
            | TelemetryEvent::InstanceProvisioned { at_ms, .. }
            | TelemetryEvent::InstanceDecommissioned { at_ms, .. }
            | TelemetryEvent::NodeFailed { at_ms, .. }
            | TelemetryEvent::NodeReplaced { at_ms, .. }
            | TelemetryEvent::ReplacementDeferred { at_ms, .. }
            | TelemetryEvent::ReplacementRetried { at_ms, .. }
            | TelemetryEvent::TenantMigrated { at_ms, .. }
            | TelemetryEvent::TenantRegistered { at_ms, .. }
            | TelemetryEvent::TenantDeregistered { at_ms, .. }
            | TelemetryEvent::BulkLoadStarted { at_ms, .. }
            | TelemetryEvent::BulkLoadFinished { at_ms, .. }
            | TelemetryEvent::ReconsolidationStarted { at_ms, .. }
            | TelemetryEvent::ReconsolidationCompleted { at_ms, .. }
            | TelemetryEvent::GroupCutover { at_ms, .. }
            | TelemetryEvent::ControllerAdapted { at_ms, .. }
            | TelemetryEvent::ConfigReloaded { at_ms, .. } => at_ms,
        }
    }
}

/// Utilization and interference statistics of one MPPDB instance,
/// derived from the simulator's always-on [`mppdb_sim::instance::InstanceStats`]
/// accounting.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstanceUtilization {
    /// The instance.
    pub instance: InstanceId,
    /// Node count of the instance.
    pub nodes: usize,
    /// Simulated ms between instance creation and the snapshot.
    pub elapsed_ms: u64,
    /// Simulated ms with at least one query running.
    pub busy_ms: u64,
    /// `busy_ms / elapsed_ms` (0 when no time has elapsed).
    pub utilization: f64,
    /// Time-averaged concurrency (queue depth integral over elapsed time).
    pub avg_concurrency: f64,
    /// Peak concurrency ever observed.
    pub max_concurrency: u32,
    /// Queries submitted to this instance.
    pub submitted: u64,
    /// Queries completed on this instance.
    pub completed: u64,
    /// Queries cancelled (migration or decommission).
    pub cancelled: u64,
    /// Mean slowdown vs dedicated execution (1.0 = no interference).
    pub mean_slowdown: f64,
    /// Worst slowdown vs dedicated execution.
    pub max_slowdown: f64,
    /// Simulated ms spent in degraded mode (at least one failed node
    /// awaiting replacement), up to the snapshot instant.
    pub degraded_ms: u64,
}

impl InstanceUtilization {
    /// Builds the utilization view of one instance at simulated time `now`.
    ///
    /// The measurement window starts at the later of the instance's
    /// creation and `epoch` (the service-ready instant), so provisioning
    /// and bulk-load delays do not dilute the utilization ratio.
    pub fn from_instance(inst: &MppdbInstance, epoch: SimTime, now: SimTime) -> Self {
        let stats = inst.stats();
        let since = inst.created().max(epoch);
        let elapsed_ms = now.saturating_since(since).as_ms();
        let denom = elapsed_ms.max(1) as f64;
        InstanceUtilization {
            instance: inst.id(),
            nodes: inst.nodes().len(),
            elapsed_ms,
            busy_ms: stats.busy_ms,
            utilization: stats.busy_ms as f64 / denom,
            avg_concurrency: stats.concurrency_ms as f64 / denom,
            max_concurrency: stats.max_concurrency,
            submitted: stats.submitted,
            completed: stats.completed,
            cancelled: stats.cancelled,
            mean_slowdown: stats.mean_slowdown(),
            max_slowdown: stats.slowdown_max,
            degraded_ms: inst.degraded_ms_at(now),
        }
    }
}

/// Serializable freeze of everything the telemetry subsystem recorded:
/// the registry contents, the per-instance utilization, and the retained
/// event stream. This is what [`crate::service::ServiceReport`] carries
/// and what lands in `BENCH_<id>.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Whether telemetry was enabled (all collections are empty if not).
    pub enabled: bool,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-instance utilization (every instance ever created).
    pub instances: Vec<InstanceUtilization>,
    /// The retained event stream, in recording order.
    pub events: Vec<TelemetryEvent>,
    /// Events discarded after `event_capacity` was reached.
    pub dropped_events: u64,
}

impl TelemetrySnapshot {
    /// An empty snapshot (used when telemetry is disabled).
    pub fn empty(enabled: bool) -> Self {
        TelemetrySnapshot {
            enabled,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            instances: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Events of the stream matching a predicate.
    pub fn events_where<'a>(
        &'a self,
        mut pred: impl FnMut(&TelemetryEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TelemetryEvent> {
        self.events.iter().filter(move |e| pred(e))
    }
}

/// The live recorder owned by the service loop. All mutating calls are
/// gated on [`TelemetryConfig::enabled`]; when disabled they reduce to a
/// single branch.
#[derive(Clone, Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: Registry,
    events: Vec<TelemetryEvent>,
    dropped_events: u64,
}

impl Telemetry {
    /// Creates a recorder under the given policy.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            config,
            registry: Registry::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Whether recording is on. Callers computing non-trivial values to
    /// record should branch on this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active policy.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Increments a counter (no-op when disabled).
    #[inline]
    pub fn incr(&mut self, name: &str) {
        if self.config.enabled {
            self.registry.incr(name);
        }
    }

    /// Increments a counter by `n` (no-op when disabled).
    #[inline]
    pub fn incr_by(&mut self, name: &str, n: u64) {
        if self.config.enabled {
            self.registry.incr_by(name, n);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        if self.config.enabled {
            self.registry.set_gauge(name, value);
        }
    }

    /// Records a histogram observation (no-op when disabled).
    #[inline]
    pub fn observe(&mut self, name: &str, value: u64) {
        if self.config.enabled {
            self.registry.observe(name, value);
        }
    }

    /// Appends an event to the stream (no-op when disabled or when events
    /// are off; counted as dropped once the capacity is reached).
    #[inline]
    pub fn record(&mut self, event: TelemetryEvent) {
        if !self.config.enabled || !self.config.record_events {
            return;
        }
        if self.events.len() >= self.config.event_capacity {
            self.dropped_events += 1;
            return;
        }
        self.events.push(event);
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The retained events so far.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Freezes the current state without consuming it (clones the event
    /// stream). Instance utilization is filled in by the service, which
    /// owns the cluster.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        if !self.config.enabled {
            return TelemetrySnapshot::empty(false);
        }
        TelemetrySnapshot {
            enabled: true,
            counters: self.registry.counters.clone(),
            gauges: self.registry.gauges.clone(),
            histograms: self
                .registry
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            instances: Vec::new(),
            events: self.events.clone(),
            dropped_events: self.dropped_events,
        }
    }

    /// Like [`Self::snapshot`], but drains the retained event stream (the
    /// memory-heavy part) instead of cloning it. Counters, gauges, and
    /// histograms stay cumulative across calls.
    pub fn take_snapshot(&mut self) -> TelemetrySnapshot {
        let mut snap = self.snapshot();
        if self.config.enabled {
            snap.events = std::mem::take(&mut self.events);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(0.5) <= 3);
        assert_eq!(h.quantile(1.0), 1000);
        let s = h.snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 1106.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn quantiles_are_upper_bounds_within_bucket_resolution() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.99) >= 990);
        assert!(h.quantile(1.0) == 1000);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = Registry::new();
        r.incr("a");
        r.incr("a");
        r.incr_by("b", 5);
        r.set_gauge("g", -3);
        r.set_gauge("g", 7);
        r.observe("h", 10);
        r.observe("h", 20);
        assert_eq!(r.counter("a"), 2);
        assert_eq!(r.counter("b"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(7));
        assert_eq!(r.gauge("missing"), None);
        assert_eq!(r.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut t = Telemetry::new(TelemetryConfig::disabled());
        t.incr("x");
        t.observe("y", 1);
        t.set_gauge("z", 1);
        t.record(TelemetryEvent::ScalingTriggered {
            at_ms: 0,
            group: 0,
            tenants: 1,
        });
        let snap = t.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn event_capacity_is_enforced_and_counted() {
        let mut t = Telemetry::new(TelemetryConfig::default().with_event_capacity(2));
        for i in 0..5u64 {
            t.record(TelemetryEvent::ScalingTriggered {
                at_ms: i,
                group: 0,
                tenants: 1,
            });
        }
        assert_eq!(t.events().len(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped_events, 3);
    }

    #[test]
    fn take_snapshot_drains_events_but_keeps_counters() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.incr("c");
        t.record(TelemetryEvent::ScalingTriggered {
            at_ms: 1,
            group: 0,
            tenants: 1,
        });
        let first = t.take_snapshot();
        assert_eq!(first.events.len(), 1);
        assert_eq!(first.counter("c"), 1);
        let second = t.take_snapshot();
        assert!(second.events.is_empty(), "events were drained");
        assert_eq!(second.counter("c"), 1, "counters stay cumulative");
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.incr("queries.submitted");
        t.observe("query.latency_ms", 1234);
        t.set_gauge("groups", 2);
        t.record(TelemetryEvent::QueryRouted {
            at_ms: 7,
            query: QueryId(1),
            tenant: TenantId(3),
            group: 0,
            mppdb: 1,
            kind: RouteKind::OtherFree,
        });
        t.record(TelemetryEvent::NodeFailed {
            at_ms: 9,
            node: NodeId(4),
            instance: Some(InstanceId(0)),
        });
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.events[0].at_ms(), 7);
    }
}
