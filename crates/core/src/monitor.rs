//! The Tenant Activity Monitor (Chapter 3, component a; Chapter 5.1).
//!
//! Per tenant-group, the monitor tracks the number of concurrently active
//! tenants and maintains the **run-time TTP** (RT-TTP): over a sliding
//! window (24 hours in the paper), the fraction of time during which at
//! most `R` tenants were concurrently active. When the RT-TTP of a group
//! drops below the performance SLA guarantee `P`, the Deployment Advisor
//! triggers lightweight elastic scaling.
//!
//! The monitor also records each tenant's busy intervals inside the window
//! — the input to over-active-tenant identification.

use crate::error::{ThriftyError, ThriftyResult};
use crate::tenant::TenantId;
use std::collections::{BTreeMap, VecDeque};

/// Sliding-window activity monitor for one tenant-group.
#[derive(Clone, Debug)]
pub struct GroupActivityMonitor {
    /// Concurrency budget `R`: more than `r` active tenants is a violation.
    r: u32,
    /// Window length in ms (paper: 24 h).
    window_ms: u64,
    /// When observation began (ms).
    started_at: u64,
    /// Closed violation intervals `[start, end)`, oldest first.
    violations: VecDeque<(u64, u64)>,
    /// Start of the currently open violation, if the active count exceeds
    /// `r` right now.
    open_violation: Option<u64>,
    /// Running queries per tenant. Ordered maps: monitor state feeds the
    /// deterministic replay (lint rule L1).
    running: BTreeMap<TenantId, u32>,
    /// Closed per-tenant busy intervals, oldest first.
    tenant_busy: BTreeMap<TenantId, VecDeque<(u64, u64)>>,
    /// Open per-tenant busy interval start.
    tenant_open: BTreeMap<TenantId, u64>,
}

impl GroupActivityMonitor {
    /// Creates a monitor with concurrency budget `r` over a sliding window
    /// of `window_ms`, starting observation at `now_ms`.
    ///
    /// # Panics
    /// Panics if `window_ms` is zero.
    pub fn new(r: u32, window_ms: u64, now_ms: u64) -> Self {
        assert!(window_ms > 0, "window must be positive");
        GroupActivityMonitor {
            r,
            window_ms,
            started_at: now_ms,
            violations: VecDeque::new(),
            open_violation: None,
            running: BTreeMap::new(),
            tenant_busy: BTreeMap::new(),
            tenant_open: BTreeMap::new(),
        }
    }

    /// The concurrency budget `R`.
    pub fn budget(&self) -> u32 {
        self.r
    }

    /// Number of distinct tenants with at least one running query.
    pub fn active_tenants(&self) -> usize {
        self.running.len()
    }

    /// Records the start of a query of `tenant` at `now_ms`.
    pub fn on_query_start(&mut self, tenant: TenantId, now_ms: u64) {
        let count = self.running.entry(tenant).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.tenant_open.insert(tenant, now_ms);
            if self.running.len() as u32 == self.r + 1 && self.open_violation.is_none() {
                self.open_violation = Some(now_ms);
            }
        }
        self.prune(now_ms);
    }

    /// Records the completion of a query of `tenant` at `now_ms`.
    ///
    /// # Errors
    /// [`ThriftyError::NoRunningQuery`] if the tenant has no running query
    /// (a caller bookkeeping error).
    pub fn on_query_finish(&mut self, tenant: TenantId, now_ms: u64) -> ThriftyResult<()> {
        let Some(count) = self.running.get_mut(&tenant) else {
            return Err(ThriftyError::NoRunningQuery {
                component: "monitor",
                tenant,
            });
        };
        *count -= 1;
        if *count == 0 {
            self.running.remove(&tenant);
            let Some(start) = self.tenant_open.remove(&tenant) else {
                return Err(ThriftyError::Internal(
                    "an open busy interval must exist while the tenant runs",
                ));
            };
            if now_ms > start {
                self.tenant_busy
                    .entry(tenant)
                    .or_default()
                    .push_back((start, now_ms));
            }
            if self.running.len() as u32 == self.r {
                if let Some(vstart) = self.open_violation.take() {
                    if now_ms > vstart {
                        self.violations.push_back((vstart, now_ms));
                    }
                }
            }
        }
        self.prune(now_ms);
        Ok(())
    }

    /// Drops closed intervals that ended before the window.
    fn prune(&mut self, now_ms: u64) {
        let cutoff = now_ms.saturating_sub(self.window_ms);
        while matches!(self.violations.front(), Some(&(_, e)) if e <= cutoff) {
            self.violations.pop_front();
        }
        for busy in self.tenant_busy.values_mut() {
            while matches!(busy.front(), Some(&(_, e)) if e <= cutoff) {
                busy.pop_front();
            }
        }
        self.tenant_busy.retain(|_, v| !v.is_empty());
    }

    /// Length (ms) of the observed window at `now_ms`: the sliding window
    /// clipped to the start of observation.
    pub fn observed_window(&self, now_ms: u64) -> u64 {
        let window_start = now_ms.saturating_sub(self.window_ms).max(self.started_at);
        now_ms.saturating_sub(window_start)
    }

    /// The RT-TTP at `now_ms`: the fraction of the observed window during
    /// which at most `R` tenants were concurrently active. Returns 1.0
    /// before any time has elapsed.
    pub fn rt_ttp(&self, now_ms: u64) -> f64 {
        let window_start = now_ms.saturating_sub(self.window_ms).max(self.started_at);
        let observed = now_ms.saturating_sub(window_start);
        if observed == 0 {
            return 1.0;
        }
        let mut violated = 0u64;
        for &(s, e) in &self.violations {
            let s = s.max(window_start);
            let e = e.min(now_ms);
            if e > s {
                violated += e - s;
            }
        }
        if let Some(vstart) = self.open_violation {
            let s = vstart.max(window_start);
            if now_ms > s {
                violated += now_ms - s;
            }
        }
        1.0 - violated as f64 / observed as f64
    }

    /// Each tenant's busy intervals clipped to the window ending at
    /// `now_ms`, sorted by tenant id — the runtime activity fed to
    /// over-active-tenant identification. Tenants idle for the entire
    /// window are omitted.
    pub fn window_activity(&self, now_ms: u64) -> Vec<(TenantId, Vec<(u64, u64)>)> {
        let window_start = now_ms.saturating_sub(self.window_ms).max(self.started_at);
        let mut out: Vec<(TenantId, Vec<(u64, u64)>)> = Vec::new();
        let mut tenants: Vec<TenantId> = self
            .tenant_busy
            .keys()
            .chain(self.tenant_open.keys())
            .copied()
            .collect();
        tenants.sort_unstable();
        tenants.dedup();
        for t in tenants {
            let mut iv: Vec<(u64, u64)> = Vec::new();
            if let Some(closed) = self.tenant_busy.get(&t) {
                for &(s, e) in closed {
                    let s = s.max(window_start);
                    let e = e.min(now_ms);
                    if e > s {
                        iv.push((s, e));
                    }
                }
            }
            if let Some(&s) = self.tenant_open.get(&t) {
                let s = s.max(window_start);
                if now_ms > s {
                    iv.push((s, now_ms));
                }
            }
            if !iv.is_empty() {
                out.push((t, iv));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TenantId = TenantId(1);
    const T2: TenantId = TenantId(2);
    const T3: TenantId = TenantId(3);

    #[test]
    fn rt_ttp_is_one_without_violations() {
        let mut m = GroupActivityMonitor::new(2, 1000, 0);
        m.on_query_start(T1, 10);
        m.on_query_start(T2, 20);
        m.on_query_finish(T1, 100).unwrap();
        m.on_query_finish(T2, 120).unwrap();
        assert_eq!(m.rt_ttp(500), 1.0);
        assert_eq!(m.active_tenants(), 0);
    }

    #[test]
    fn violation_opens_when_budget_exceeded() {
        let mut m = GroupActivityMonitor::new(2, 1_000, 0);
        m.on_query_start(T1, 0);
        m.on_query_start(T2, 0);
        assert_eq!(m.active_tenants(), 2);
        m.on_query_start(T3, 100); // third active tenant: violation opens
        assert_eq!(m.active_tenants(), 3);
        m.on_query_finish(T3, 300).unwrap(); // back to 2: violation closes
                                             // 200 ms violated out of 1000 observed at t = 1000.
        assert!((m.rt_ttp(1_000) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn open_violation_counts_up_to_now() {
        let mut m = GroupActivityMonitor::new(1, 1_000, 0);
        m.on_query_start(T1, 0);
        m.on_query_start(T2, 500);
        // Still violating at t = 1000: 500 ms of 1000.
        assert!((m.rt_ttp(1_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_slides_past_old_violations() {
        let mut m = GroupActivityMonitor::new(1, 1_000, 0);
        m.on_query_start(T1, 0);
        m.on_query_start(T2, 0);
        m.on_query_finish(T2, 100).unwrap();
        m.on_query_finish(T1, 100).unwrap();
        assert!(m.rt_ttp(200) < 1.0);
        // By t = 2000 the violation [0, 100) left the 1000 ms window.
        assert_eq!(m.rt_ttp(2_000), 1.0);
    }

    #[test]
    fn short_window_start_is_not_counted_as_compliance() {
        // Observation started at t = 1000; at t = 1100 only 100 ms have been
        // observed, of which 50 were violating.
        let mut m = GroupActivityMonitor::new(0, 10_000, 1_000);
        m.on_query_start(T1, 1_050);
        assert!((m.rt_ttp(1_100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intra_tenant_concurrency_is_one_active_tenant() {
        let mut m = GroupActivityMonitor::new(1, 1_000, 0);
        m.on_query_start(T1, 0);
        m.on_query_start(T1, 10); // the tenant's own second query
        assert_eq!(m.active_tenants(), 1);
        assert_eq!(m.rt_ttp(500), 1.0);
        m.on_query_finish(T1, 100).unwrap();
        assert_eq!(m.active_tenants(), 1);
        m.on_query_finish(T1, 200).unwrap();
        assert_eq!(m.active_tenants(), 0);
    }

    #[test]
    fn window_activity_reports_busy_intervals() {
        let mut m = GroupActivityMonitor::new(2, 10_000, 0);
        m.on_query_start(T1, 100);
        m.on_query_finish(T1, 300).unwrap();
        m.on_query_start(T2, 200);
        m.on_query_start(T1, 500);
        let acts = m.window_activity(1_000);
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[0].0, T1);
        assert_eq!(acts[0].1, vec![(100, 300), (500, 1_000)]);
        assert_eq!(acts[1].0, T2);
        assert_eq!(acts[1].1, vec![(200, 1_000)]);
    }

    #[test]
    fn window_activity_clips_to_window() {
        let mut m = GroupActivityMonitor::new(2, 1_000, 0);
        m.on_query_start(T1, 0);
        m.on_query_finish(T1, 100).unwrap();
        m.on_query_start(T1, 1_900);
        m.on_query_finish(T1, 1_950).unwrap();
        let acts = m.window_activity(2_000);
        // The [0,100) interval left the window [1000, 2000).
        assert_eq!(acts, vec![(T1, vec![(1_900, 1_950)])]);
    }

    #[test]
    fn unbalanced_finish_is_an_error() {
        let mut m = GroupActivityMonitor::new(1, 1_000, 0);
        assert!(matches!(
            m.on_query_finish(T1, 10),
            Err(ThriftyError::NoRunningQuery {
                component: "monitor",
                ..
            })
        ));
    }
}
