//! The tenant-driven *divergent* design (Chapter 8, future work).
//!
//! Thrifty's general design must survive ad-hoc queries (requirement R5),
//! so it can only react to overload. For the restricted tenant class that
//! runs **report-generation applications only** — whose query templates are
//! known up front (extractable from stored procedures) — the paper sketches
//! a specialized design: provision the tuning MPPDB with `U > n_1` nodes
//! *upfront*, sized so that `MPPDB_0` can concurrently process the overflow
//! of several active tenants without SLA violations. The crux is
//! "identifying the minimum value of U that can afford different degrees of
//! concurrent query processing on MPPDB_0".
//!
//! This module implements that sizing: given the class's template set and
//! the target overflow degree, it computes the minimal `U` under the
//! processor-sharing cost model and derives the divergent group plan. The
//! non-linear scale-out problem the paper warns about shows up exactly as
//! expected: templates with a large Amdahl serial fraction make `U`
//! unbounded, and such templates are reported instead of silently sized.

use crate::design::TenantGroupPlan;
use crate::tenant::Tenant;
use crate::tuning::recommend_tuning_nodes;
use mppdb_sim::query::QueryTemplate;
use serde::{Deserialize, Serialize};

/// Sizing outcome for one template.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TemplateSizing {
    /// `MPPDB_0` with this many nodes absorbs the target concurrency.
    Feasible(u32),
    /// No node count up to the cap meets the SLA — the template's serial
    /// fraction makes concurrent processing irreducibly slower than the
    /// dedicated baseline (the "non-linear scale-out problem").
    Infeasible,
}

/// The divergent-design sizing result for a tenant class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DivergentSizing {
    /// The minimal `U` covering every feasible template.
    pub u: u32,
    /// Per-template outcomes, in input order.
    pub per_template: Vec<TemplateSizing>,
    /// Indices of templates that cannot be absorbed at the target
    /// concurrency (they fall back to the reactive path).
    pub infeasible: Vec<usize>,
}

/// Computes the minimal tuning-MPPDB size `U` such that every *feasible*
/// template of the class, concurrently processed with `overflow_degree - 1`
/// identical queries on `MPPDB_0`, still meets the SLA of a dedicated
/// `n1`-node MPPDB within `slack` (≥ 1.0).
///
/// `data_gb` is the per-tenant data volume of the class (the class is
/// homogeneous by construction — Step 1 of the grouping puts equal-size
/// tenants together). `max_u` caps the search.
///
/// # Panics
/// Panics if `templates` is empty or parameters are out of range (see
/// [`recommend_tuning_nodes`]).
pub fn size_divergent_tuning_mppdb(
    templates: &[QueryTemplate],
    data_gb: f64,
    n1: u32,
    overflow_degree: u32,
    slack: f64,
    max_u: u32,
) -> DivergentSizing {
    assert!(!templates.is_empty(), "a tenant class needs templates");
    let mut u = n1;
    let mut per_template = Vec::with_capacity(templates.len());
    let mut infeasible = Vec::new();
    for (i, t) in templates.iter().enumerate() {
        match recommend_tuning_nodes(t, data_gb, n1, overflow_degree, slack, max_u) {
            Some(needed) => {
                u = u.max(needed);
                per_template.push(TemplateSizing::Feasible(needed));
            }
            None => {
                per_template.push(TemplateSizing::Infeasible);
                infeasible.push(i);
            }
        }
    }
    DivergentSizing {
        u,
        per_template,
        infeasible,
    }
}

/// Builds a divergent tenant-group plan: `A = R` MPPDBs of `n1` nodes with
/// the tuning MPPDB grown upfront to the size returned by
/// [`size_divergent_tuning_mppdb`]. With the overflow absorbed by design,
/// the group tolerates `R - 1 + overflow_degree` concurrently active
/// tenants without SLA violations for its known templates — fewer elastic
/// scalings at a slightly higher steady-state node cost.
///
/// # Panics
/// Panics if `members` is empty or the sizing inputs are invalid.
pub fn divergent_group_plan(
    members: Vec<Tenant>,
    replication: u32,
    templates: &[QueryTemplate],
    overflow_degree: u32,
    slack: f64,
    max_u: u32,
) -> (TenantGroupPlan, DivergentSizing) {
    assert!(!members.is_empty(), "a tenant-group needs members");
    let n1 = members.iter().map(|t| t.nodes).max().unwrap_or(0);
    let data_gb = members.iter().map(|t| t.data_gb).fold(0.0f64, f64::max);
    let sizing = size_divergent_tuning_mppdb(templates, data_gb, n1, overflow_degree, slack, max_u);
    let plan = TenantGroupPlan::new(members, replication, sizing.u);
    (plan, sizing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantId;
    use mppdb_sim::query::TemplateId;

    fn linear(cost: f64) -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), cost, 0.0)
    }

    fn nonlinear() -> QueryTemplate {
        QueryTemplate::new(TemplateId(19), 100.0, 0.3)
    }

    #[test]
    fn linear_class_sizes_to_degree_times_n1() {
        let sizing =
            size_divergent_tuning_mppdb(&[linear(100.0), linear(400.0)], 200.0, 2, 2, 1.0, 64);
        assert_eq!(sizing.u, 4);
        assert!(sizing.infeasible.is_empty());
        assert_eq!(
            sizing.per_template,
            vec![TemplateSizing::Feasible(4), TemplateSizing::Feasible(4)]
        );
    }

    #[test]
    fn nonlinear_templates_are_reported_not_sized() {
        let sizing =
            size_divergent_tuning_mppdb(&[linear(100.0), nonlinear()], 800.0, 8, 2, 1.0, 1024);
        assert_eq!(sizing.infeasible, vec![1]);
        assert_eq!(sizing.u, 16); // sized by the feasible template
    }

    #[test]
    fn divergent_plan_grows_the_tuning_mppdb_upfront() {
        let members: Vec<Tenant> = (0..5).map(|i| Tenant::new(TenantId(i), 4, 400.0)).collect();
        let (plan, sizing) = divergent_group_plan(members, 3, &[linear(150.0)], 3, 1.0, 64);
        assert_eq!(sizing.u, 12); // absorb 3 concurrent linear queries
        assert_eq!(plan.mppdb_nodes, vec![12, 4, 4]);
        assert_eq!(plan.nodes_used(), 20);
        // Versus the reactive design's 12 nodes: the divergent class pays 8
        // more nodes upfront to avoid elastic scalings.
    }

    #[test]
    fn degree_one_needs_no_growth() {
        let sizing = size_divergent_tuning_mppdb(&[linear(100.0)], 200.0, 2, 1, 1.0, 64);
        assert_eq!(sizing.u, 2);
    }

    #[test]
    #[should_panic(expected = "needs templates")]
    fn empty_template_set_panics() {
        let _ = size_divergent_tuning_mppdb(&[], 200.0, 2, 2, 1.0, 64);
    }
}
