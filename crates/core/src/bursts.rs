//! Regular-burst detection (Chapter 5.1).
//!
//! "Tenants with regular bursts in tenant activity (e.g., there are usually
//! bursts near the end of a fiscal year) could be identified by Thrifty's
//! regular activity monitoring and they would be excluded from consolidation
//! before the bursts arrive."
//!
//! A *burst* is a window in which the tenant's activity far exceeds its own
//! baseline. [`BurstDetector::detect_bursts`] finds such windows; [`RecurringBurst`]s are
//! bursts that recur at a near-constant period across the history, letting
//! the Deployment Advisor schedule a proactive exclusion ahead of the next
//! predicted occurrence.

use serde::{Deserialize, Serialize};

/// Burst-detection parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BurstDetector {
    /// Window width over which activity is aggregated (ms). Daily windows
    /// suit office-hour workloads.
    pub window_ms: u64,
    /// A window is a burst when its busy fraction exceeds
    /// `threshold_factor ×` the tenant's mean busy fraction.
    pub threshold_factor: f64,
    /// Minimum busy fraction for a window to count as a burst at all
    /// (guards against flagging a tenant whose baseline is ~zero).
    pub min_busy_fraction: f64,
    /// Relative jitter tolerated between burst intervals for them to count
    /// as one recurring series (0.25 = ±25%).
    pub period_tolerance: f64,
}

impl Default for BurstDetector {
    fn default() -> Self {
        BurstDetector {
            window_ms: 24 * 3_600_000,
            threshold_factor: 3.0,
            min_busy_fraction: 0.05,
            period_tolerance: 0.25,
        }
    }
}

/// One detected burst window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Index of the window within the history.
    pub window: usize,
    /// Start of the window (ms).
    pub start_ms: u64,
    /// Busy fraction within the window.
    pub busy_fraction: f64,
}

/// A series of bursts recurring at a stable period.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecurringBurst {
    /// The member bursts, in time order.
    pub bursts: Vec<Burst>,
    /// Mean period between consecutive bursts (ms).
    pub period_ms: u64,
    /// Predicted start of the next occurrence (ms, past the history end).
    pub next_predicted_ms: u64,
}

impl BurstDetector {
    /// Busy fraction per window over `[0, horizon_ms)` from merged busy
    /// intervals.
    pub fn window_profile(&self, intervals: &[(u64, u64)], horizon_ms: u64) -> Vec<f64> {
        assert!(self.window_ms > 0, "window must be positive");
        let windows = horizon_ms.div_ceil(self.window_ms) as usize;
        let mut busy = vec![0u64; windows];
        for &(s, e) in intervals {
            let s = s.min(horizon_ms);
            let e = e.min(horizon_ms);
            let mut cur = s;
            while cur < e {
                let w = (cur / self.window_ms) as usize;
                let w_end = ((w as u64 + 1) * self.window_ms).min(e);
                busy[w] += w_end - cur;
                cur = w_end;
            }
        }
        busy.iter()
            .map(|&b| b as f64 / self.window_ms as f64)
            .collect()
    }

    /// Detects burst windows in a tenant's history.
    pub fn detect_bursts(&self, intervals: &[(u64, u64)], horizon_ms: u64) -> Vec<Burst> {
        let profile = self.window_profile(intervals, horizon_ms);
        if profile.is_empty() {
            return Vec::new();
        }
        // Order pinned: the window profile is a Vec indexed by window
        // position, walked front to back.
        // lint: allow(float-merge)
        let mean = profile.iter().sum::<f64>() / profile.len() as f64;
        let threshold = (mean * self.threshold_factor).max(self.min_busy_fraction);
        profile
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > threshold)
            .map(|(w, &f)| Burst {
                window: w,
                start_ms: w as u64 * self.window_ms,
                busy_fraction: f,
            })
            .collect()
    }

    /// Finds a recurring series among the detected bursts: at least three
    /// occurrences whose inter-arrival times agree within the period
    /// tolerance. Returns `None` when bursts are absent or aperiodic.
    pub fn recurring(&self, intervals: &[(u64, u64)], horizon_ms: u64) -> Option<RecurringBurst> {
        let bursts = self.detect_bursts(intervals, horizon_ms);
        if bursts.len() < 3 {
            return None;
        }
        let gaps: Vec<u64> = bursts
            .windows(2)
            .map(|w| w[1].start_ms - w[0].start_ms)
            .collect();
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let periodic = gaps
            .iter()
            .all(|&g| (g as f64 - mean_gap).abs() <= mean_gap * self.period_tolerance);
        if !periodic || mean_gap <= 0.0 {
            return None;
        }
        let last = bursts.last()?.start_ms;
        Some(RecurringBurst {
            period_ms: mean_gap as u64,
            next_predicted_ms: last + mean_gap as u64,
            bursts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 24 * 3_600_000;

    fn detector() -> BurstDetector {
        BurstDetector::default()
    }

    /// Light background activity plus heavy bursts on selected days.
    fn history(burst_days: &[u64], days: u64) -> Vec<(u64, u64)> {
        let mut iv = Vec::new();
        for d in 0..days {
            let base = d * DAY;
            // one hour of background work every day
            iv.push((base + 9 * 3_600_000, base + 10 * 3_600_000));
            if burst_days.contains(&d) {
                // twelve extra hours on burst days
                iv.push((base + 10 * 3_600_000, base + 22 * 3_600_000));
            }
        }
        iv
    }

    #[test]
    fn window_profile_partitions_busy_time() {
        let iv = vec![(0, DAY / 2), (DAY + DAY / 4, 2 * DAY)];
        let profile = detector().window_profile(&iv, 2 * DAY);
        assert_eq!(profile.len(), 2);
        assert!((profile[0] - 0.5).abs() < 1e-12);
        assert!((profile[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bursts_stand_out_from_baseline() {
        let iv = history(&[10], 30);
        let bursts = detector().detect_bursts(&iv, 30 * DAY);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].window, 10);
        assert!(bursts[0].busy_fraction > 0.5);
    }

    #[test]
    fn steady_tenants_have_no_bursts() {
        let iv = history(&[], 30);
        assert!(detector().detect_bursts(&iv, 30 * DAY).is_empty());
    }

    #[test]
    fn recurring_bursts_are_predicted() {
        // Bursts every 7 days: next one predicted a period after the last.
        let iv = history(&[7, 14, 21, 28], 30);
        let rec = detector()
            .recurring(&iv, 30 * DAY)
            .expect("periodic series");
        assert_eq!(rec.bursts.len(), 4);
        assert_eq!(rec.period_ms, 7 * DAY);
        assert_eq!(rec.next_predicted_ms, 35 * DAY);
    }

    #[test]
    fn aperiodic_bursts_are_not_a_series() {
        let iv = history(&[3, 11, 13], 30);
        assert!(detector().recurring(&iv, 30 * DAY).is_none());
    }

    #[test]
    fn too_few_bursts_are_not_a_series() {
        let iv = history(&[5, 20], 30);
        assert!(detector().recurring(&iv, 30 * DAY).is_none());
    }
}
