//! The Deployment Master (Chapter 3, component c).
//!
//! Follows a deployment plan: starts the MPPDB instances of every
//! tenant-group on the simulated cluster, bulk loads all member tenants
//! onto each of a group's `A` instances (Property 1: every MPPDB of a
//! group hosts all of its tenants), and leaves every unused node
//! hibernated. The deployment is static until the next (re-)consolidation
//! cycle.

use crate::design::DeploymentPlan;
use crate::error::{ThriftyError, ThriftyResult};
use mppdb_sim::cluster::{Cluster, SimEvent};
use mppdb_sim::instance::InstanceId;
use mppdb_sim::query::SimTenantId;
use mppdb_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// The materialized deployment: per tenant-group, the instances serving it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Deployment {
    /// `instances[g][j]` = instance id of MPPDB `j` of tenant-group `g`
    /// (`j = 0` is the tuning MPPDB).
    pub instances: Vec<Vec<InstanceId>>,
    /// When every instance finished provisioning (node start-up plus bulk
    /// load of every replica).
    pub ready_at: SimTime,
}

/// The Deployment Master.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeploymentMaster;

impl DeploymentMaster {
    /// Deploys a plan onto the cluster and runs the simulation until every
    /// instance is ready.
    ///
    /// # Errors
    /// Fails if the plan is empty or the cluster has fewer free nodes than
    /// the plan requires.
    pub fn deploy(plan: &DeploymentPlan, cluster: &mut Cluster) -> ThriftyResult<Deployment> {
        if plan.groups.is_empty() {
            return Err(ThriftyError::EmptyPlan);
        }
        let required = plan.nodes_used();
        if required > cluster.free_nodes() as u64 {
            return Err(ThriftyError::ClusterTooSmall {
                required,
                available: cluster.free_nodes(),
            });
        }
        let mut instances = Vec::with_capacity(plan.groups.len());
        for group in &plan.groups {
            let datasets: Vec<(SimTenantId, f64)> =
                group.members.iter().map(|t| (t.id, t.data_gb)).collect();
            let mut group_instances = Vec::with_capacity(group.mppdb_nodes.len());
            for &nodes in &group.mppdb_nodes {
                let id = cluster.provision_instance(nodes as usize, &datasets)?;
                group_instances.push(id);
            }
            instances.push(group_instances);
        }
        // Run provisioning to completion; the last readiness event is the
        // deployment's ready time.
        let events = cluster.run_to_quiescence();
        let ready_at = events
            .iter()
            .filter(|e| matches!(e, SimEvent::InstanceReady { .. }))
            .map(SimEvent::at)
            .max()
            .unwrap_or_else(|| cluster.now());
        Ok(Deployment {
            instances,
            ready_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::TenantGroupPlan;
    use crate::tenant::{Tenant, TenantId};
    use mppdb_sim::cluster::ClusterConfig;
    use mppdb_sim::instance::InstanceState;

    fn plan() -> DeploymentPlan {
        DeploymentPlan {
            groups: vec![
                TenantGroupPlan::new(
                    vec![
                        Tenant::new(TenantId(0), 4, 400.0),
                        Tenant::new(TenantId(1), 2, 200.0),
                    ],
                    2,
                    4,
                ),
                TenantGroupPlan::new(vec![Tenant::new(TenantId(2), 2, 200.0)], 2, 2),
            ],
        }
    }

    #[test]
    fn deploy_provisions_every_replica_with_all_members() {
        let mut cluster = Cluster::new(ClusterConfig::new(12));
        let deployment = DeploymentMaster::deploy(&plan(), &mut cluster).unwrap();
        assert_eq!(deployment.instances.len(), 2);
        assert_eq!(deployment.instances[0].len(), 2);
        // Group 0 instances host both members (Property 1).
        for &iid in &deployment.instances[0] {
            let inst = cluster.instance(iid).unwrap();
            assert_eq!(inst.state(), InstanceState::Ready);
            assert!(inst.hosts(TenantId(0)));
            assert!(inst.hosts(TenantId(1)));
            assert!(!inst.hosts(TenantId(2)));
            assert!((inst.total_data_gb() - 600.0).abs() < 1e-9);
        }
        // 2*4 + 2*2 = 12 nodes powered; none left.
        assert_eq!(cluster.free_nodes(), 0);
        assert!(deployment.ready_at > SimTime::ZERO);
    }

    #[test]
    fn unused_nodes_stay_hibernated() {
        let mut cluster = Cluster::new(ClusterConfig::new(20));
        DeploymentMaster::deploy(&plan(), &mut cluster).unwrap();
        assert_eq!(cluster.free_nodes(), 8);
        assert_eq!(cluster.powered_nodes(), 12);
    }

    #[test]
    fn ready_time_reflects_the_biggest_load() {
        // Group 0 loads 600 GB per instance; the Table 5.1 model says that
        // takes (103.4 + 50.3*600) s plus a 4-node start-up.
        let mut cluster = Cluster::new(ClusterConfig::new(12));
        let deployment = DeploymentMaster::deploy(&plan(), &mut cluster).unwrap();
        let model = ClusterConfig::new(12).provisioning;
        let expected = model.provision_time(4, 600.0);
        assert_eq!(deployment.ready_at, SimTime::ZERO + expected);
    }

    #[test]
    fn too_small_cluster_is_rejected() {
        let mut cluster = Cluster::new(ClusterConfig::new(4));
        let err = DeploymentMaster::deploy(&plan(), &mut cluster).unwrap_err();
        assert!(matches!(
            err,
            ThriftyError::ClusterTooSmall { required: 12, .. }
        ));
    }

    #[test]
    fn empty_plan_is_rejected() {
        let mut cluster = Cluster::new(ClusterConfig::new(4));
        let err = DeploymentMaster::deploy(&DeploymentPlan::default(), &mut cluster).unwrap_err();
        assert_eq!(err, ThriftyError::EmptyPlan);
    }
}
