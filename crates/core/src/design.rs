//! The Tenant-Driven Design: cluster design and tenant placement
//! (Chapters 4.1–4.2) materialized as a deployment plan (Chapter 3).
//!
//! For each tenant-group the TDD creates `A` MPPDBs: group `G_0` — the
//! "tuning MPPDB" — gets `U ≥ n_1` nodes (where `n_1` is the largest
//! member's request), every other group gets exactly `n_1` nodes. Every
//! member tenant is placed on **all** `A` MPPDBs, which yields a
//! replication factor of `A` (Property 1). After tenant grouping, `A = R`.

use crate::grouping::{GroupingProblem, GroupingSolution};
use crate::tenant::Tenant;
use serde::{Deserialize, Serialize};

/// The deployment plan for one tenant-group: its members and the node sizes
/// of the `A` MPPDB instances that will serve it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantGroupPlan {
    /// The member tenants.
    pub members: Vec<Tenant>,
    /// Node count of each MPPDB instance. `mppdb_nodes[0]` is the tuning
    /// MPPDB (`U` nodes); the rest have `n_1` nodes each. Length = `A`.
    pub mppdb_nodes: Vec<u32>,
}

impl TenantGroupPlan {
    /// Builds the plan for a member set with replication `a` and tuning
    /// size `u`.
    ///
    /// # Panics
    /// Panics if `members` is empty, `a == 0`, or `u` is smaller than the
    /// largest member's request (the TDD requires `U ≥ n_1`).
    pub fn new(members: Vec<Tenant>, a: u32, u: u32) -> Self {
        assert!(!members.is_empty(), "a tenant-group needs members");
        assert!(a >= 1, "replication factor must be at least 1");
        // The assert above guarantees members is non-empty.
        let n1 = members.iter().map(|t| t.nodes).max().unwrap_or(0);
        assert!(
            u >= n1,
            "tuning MPPDB must have at least n_1 = {n1} nodes, got {u}"
        );
        let mut mppdb_nodes = vec![n1; a as usize];
        mppdb_nodes[0] = u;
        TenantGroupPlan {
            members,
            mppdb_nodes,
        }
    }

    /// The replication factor `A` of this group (Property 1).
    pub fn replication(&self) -> u32 {
        self.mppdb_nodes.len() as u32
    }

    /// The largest member's node request, `n_1`.
    pub fn largest_request(&self) -> u32 {
        // Construction guarantees at least one member.
        self.members.iter().map(|t| t.nodes).max().unwrap_or(0)
    }

    /// Nodes of the tuning MPPDB (`U`).
    pub fn tuning_nodes(&self) -> u32 {
        self.mppdb_nodes[0]
    }

    /// Manual tuning (Chapter 6): grow the tuning MPPDB to `u` nodes so
    /// overflow queries concurrently processed on MPPDB_0 still meet their
    /// SLA empirically.
    ///
    /// # Panics
    /// Panics if `u < n_1`.
    pub fn set_tuning_nodes(&mut self, u: u32) {
        assert!(
            u >= self.largest_request(),
            "tuning MPPDB must keep at least n_1 nodes"
        );
        self.mppdb_nodes[0] = u;
    }

    /// Total nodes this group consumes.
    pub fn nodes_used(&self) -> u64 {
        self.mppdb_nodes.iter().map(|&n| u64::from(n)).sum()
    }

    /// Total nodes the members requested (their pre-consolidation cost).
    pub fn nodes_requested(&self) -> u64 {
        self.members.iter().map(|t| u64::from(t.nodes)).sum()
    }

    /// Total data volume of the group in GB — what each of the `A` MPPDBs
    /// must bulk load.
    pub fn total_data_gb(&self) -> f64 {
        self.members.iter().map(|t| t.data_gb).sum()
    }
}

/// A full deployment plan: every tenant-group's cluster design and (implied
/// by Property 1) tenant placement.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// Per-group plans.
    pub groups: Vec<TenantGroupPlan>,
}

impl DeploymentPlan {
    /// Materializes a grouping solution into a deployment plan with
    /// `A = R` and `U = n_1` (the defaults of Chapters 5–6).
    pub fn from_grouping(problem: &GroupingProblem, solution: &GroupingSolution) -> Self {
        let groups = solution
            .groups
            .iter()
            .map(|g| {
                let members: Vec<Tenant> = g.members.iter().map(|&i| problem.tenants[i]).collect();
                // Grouping never emits an empty group.
                let n1 = members.iter().map(|t| t.nodes).max().unwrap_or(0);
                TenantGroupPlan::new(members, problem.replication, n1)
            })
            .collect();
        DeploymentPlan { groups }
    }

    /// Total nodes the plan uses.
    pub fn nodes_used(&self) -> u64 {
        self.groups.iter().map(TenantGroupPlan::nodes_used).sum()
    }

    /// Total nodes requested by all tenants before consolidation.
    pub fn nodes_requested(&self) -> u64 {
        self.groups
            .iter()
            .map(TenantGroupPlan::nodes_requested)
            .sum()
    }

    /// Consolidation effectiveness: fraction of requested nodes saved.
    pub fn effectiveness(&self) -> f64 {
        let req = self.nodes_requested();
        if req == 0 {
            return 0.0;
        }
        1.0 - self.nodes_used() as f64 / req as f64
    }

    /// Number of tenants across all groups.
    pub fn tenant_count(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }

    /// Number of MPPDB instances the plan creates.
    pub fn instance_count(&self) -> usize {
        self.groups.iter().map(|g| g.mppdb_nodes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantId;

    fn tenants(sizes: &[u32]) -> Vec<Tenant> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Tenant::new(TenantId(i as u32), n, 100.0 * n as f64))
            .collect()
    }

    #[test]
    fn toy_example_of_figure_4_1() {
        // Ten tenants requesting 6,6,5,5,5,4,4,3,2,2 nodes (42 total) in a
        // single tenant-group with A = 3 and U = n_1 = 6 gives the 18-node
        // cluster design of Figure 4.1b.
        let plan = TenantGroupPlan::new(tenants(&[6, 6, 5, 5, 5, 4, 4, 3, 2, 2]), 3, 6);
        assert_eq!(plan.nodes_requested(), 42);
        assert_eq!(plan.nodes_used(), 18);
        assert_eq!(plan.mppdb_nodes, vec![6, 6, 6]);
        assert_eq!(plan.replication(), 3); // Property 1
    }

    #[test]
    fn tuning_mppdb_can_be_grown() {
        let mut plan = TenantGroupPlan::new(tenants(&[10, 4]), 3, 10);
        assert_eq!(plan.nodes_used(), 30);
        plan.set_tuning_nodes(12); // the Chapter 6 example: U 10 -> 12
        assert_eq!(plan.mppdb_nodes, vec![12, 10, 10]);
        assert_eq!(plan.nodes_used(), 32);
    }

    #[test]
    #[should_panic(expected = "at least n_1")]
    fn tuning_mppdb_cannot_shrink_below_n1() {
        let mut plan = TenantGroupPlan::new(tenants(&[10, 4]), 3, 10);
        plan.set_tuning_nodes(8);
    }

    #[test]
    fn plan_aggregates() {
        let plan = DeploymentPlan {
            groups: vec![
                TenantGroupPlan::new(tenants(&[6, 6]), 3, 6),
                TenantGroupPlan::new(tenants(&[2, 2, 2]), 3, 2),
            ],
        };
        assert_eq!(plan.nodes_used(), 18 + 6);
        assert_eq!(plan.nodes_requested(), 12 + 6);
        assert_eq!(plan.tenant_count(), 5);
        assert_eq!(plan.instance_count(), 6);
    }

    #[test]
    fn group_data_volume_sums_members() {
        let plan = TenantGroupPlan::new(tenants(&[2, 4]), 2, 4);
        assert!((plan.total_data_gb() - 600.0).abs() < 1e-12);
    }
}
