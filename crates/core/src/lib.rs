//! # thrifty — MPPDB-as-a-Service by Tenant-Driven Design
//!
//! A faithful reproduction of *Parallel Analytics as a Service* (Wong, He,
//! Lo — SIGMOD 2013): the Thrifty system, which consolidates thousands of
//! MPPDB tenants onto a shared cluster while guaranteeing each tenant the
//! query latency of its own dedicated `n_i`-node MPPDB for `P%` of the
//! time, with replication factor `R` for high availability.
//!
//! ## The Tenant-Driven Design (TDD)
//!
//! * **Cluster design** ([`design`]) — per tenant-group, `A` node groups
//!   each running one shared-process MPPDB sized for the group's largest
//!   member; group 0 is the tuning MPPDB with `U ≥ n_1` nodes.
//! * **Tenant placement** ([`design`]) — every member is replicated on all
//!   `A` MPPDBs (Property 1: replication factor `A`).
//! * **Query routing** ([`routing`]) — Algorithm 1 routes *active tenants*
//!   to exclusive MPPDBs; overflow is concurrently processed on MPPDB_0.
//!
//! ## Serving thousands of tenants
//!
//! Tenant grouping ([`grouping`]) splits the tenant population into groups
//! of a few tens of tenants such that at most `R` members are concurrently
//! active for `≥ P%` of epochs — the LIVBPwFC optimization problem, solved
//! by the paper's 2-step heuristic with FFD and an exact branch-and-bound
//! as references.
//!
//! ## Run time
//!
//! The Deployment Advisor ([`advisor`]) turns activity histories into a
//! deployment plan; the Deployment Master ([`master`]) materializes it on
//! the simulated cluster; [`service::ThriftyService`] replays tenant logs
//! through routing, SLA accounting ([`sla`]), RT-TTP monitoring
//! ([`monitor`]), and lightweight elastic scaling ([`scaling`]). Manual
//! tuning of `U` is modeled in [`tuning`].
//!
//! ```
//! use thrifty::prelude::*;
//!
//! // Two 4-node tenants with disjoint activity consolidate onto one
//! // tenant-group: R = 2 replicas of a 4-node MPPDB — 8 nodes for 8
//! // requested, plus the SLA guarantee and 2x replication for free.
//! let histories = vec![
//!     TenantHistory::new(Tenant::new(TenantId(0), 4, 400.0), vec![(0, 30_000)]),
//!     TenantHistory::new(Tenant::new(TenantId(1), 4, 400.0), vec![(60_000, 90_000)]),
//! ];
//! let advisor = DeploymentAdvisor::new(AdvisorConfig {
//!     replication: 2,
//!     sla_p: 0.999,
//!     epoch: EpochConfig::new(10_000, 120_000),
//!     algorithm: GroupingAlgorithm::TwoStep,
//!     exclusion: ExclusionPolicy::default(),
//! });
//! let advice = advisor.advise(&histories);
//! assert_eq!(advice.plan.groups.len(), 1);
//! assert_eq!(advice.plan.nodes_used(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// L4 (no-panic discipline): library code routes failures through
// `ThriftyError`; unwrap stays available in tests. Enforced alongside
// thrifty-lint, which additionally catches `.expect()`/`panic!`.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod activity;
pub mod advisor;
pub mod billing;
pub mod bursts;
pub mod clock;
pub mod design;
pub mod divergent;
pub mod error;
pub mod grouping;
pub mod master;
pub mod metrics;
pub mod monitor;
pub mod reconsolidation;
pub mod routing;
pub mod scaling;
pub mod service;
pub mod sla;
pub mod telemetry;
pub mod tenant;
pub mod tuning;

/// Commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::activity::{ActivityVector, EpochConfig};
    pub use crate::advisor::{
        Advice, AdvisorConfig, DeploymentAdvisor, ExclusionPolicy, GroupingAlgorithm,
    };
    pub use crate::billing::{Invoice, ProviderEconomics, Tariff, UsageMeter};
    pub use crate::bursts::{Burst, BurstDetector, RecurringBurst};
    pub use crate::clock::{ClockSource, SimClock};
    pub use crate::design::{DeploymentPlan, TenantGroupPlan};
    pub use crate::divergent::{
        divergent_group_plan, size_divergent_tuning_mppdb, DivergentSizing, TemplateSizing,
    };
    pub use crate::error::{ThriftyError, ThriftyResult};
    pub use crate::grouping::{
        exact_grouping, ffd_grouping, ffd_grouping_with, split_size_bucket, two_step_buckets,
        two_step_grouping, two_step_grouping_with, ActiveCountHistogram, FfdCapacity, FfdConfig,
        FfdOrder, GroupClosing, GroupingProblem, GroupingProblemBuilder, GroupingSolution,
        TenantGroup, TieBreaking, TwoStepConfig,
    };
    pub use crate::master::{Deployment, DeploymentMaster};
    pub use crate::metrics::ConsolidationReport;
    pub use crate::monitor::GroupActivityMonitor;
    pub use crate::reconsolidation::{
        BoundedPlan, ControllerConfig, CyclePlan, PlannedGroup, Reconsolidator, SkipCounts,
    };
    pub use crate::routing::{QueryRouter, Route, RouteKind};
    pub use crate::scaling::{identify_over_active, ScalingEvent};
    pub use crate::service::{
        ConfigDelta, IncomingQuery, KnobChange, RejectedKnob, ServiceConfig, ServiceConfigBuilder,
        ServiceReport, ThriftyService, TraceConfig, TtpSample,
    };
    pub use crate::sla::{SlaPolicy, SlaRecord, SlaSummary};
    pub use crate::telemetry::{
        InstanceUtilization, Registry, Telemetry, TelemetryConfig, TelemetryEvent,
        TelemetrySnapshot,
    };
    pub use crate::tenant::{Tenant, TenantHistory, TenantId};
    pub use crate::tuning::recommend_tuning_nodes;
}
