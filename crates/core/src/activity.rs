//! Epoch-discretized tenant activity.
//!
//! Chapter 5 represents a tenant's history as a `d`-dimensional 0/1 vector:
//! dimension `k` is 1 iff the tenant had a query executing during the `k`-th
//! fixed-width epoch. Because tenant activity is bursty (sessions of hours
//! within a 30-day horizon), we store the vector as sorted *runs* of active
//! epochs rather than a dense bitmap: the representation size tracks the
//! number of busy intervals (a few thousand per tenant), not the epoch
//! count, which at the finest 0.1 s epochs of Figure 7.1 would be 26 million
//! dimensions per tenant.

use serde::{Deserialize, Serialize};

/// Epoch discretization parameters shared by every activity vector in a
/// grouping problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochConfig {
    /// Width of one epoch in milliseconds (Table 7.1: 0.1 s … 1800 s,
    /// default 10 s).
    pub epoch_ms: u64,
    /// Horizon covered by the history, in milliseconds.
    pub horizon_ms: u64,
}

impl EpochConfig {
    /// Creates a config.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(epoch_ms: u64, horizon_ms: u64) -> Self {
        assert!(epoch_ms > 0, "epoch size must be positive");
        assert!(horizon_ms > 0, "horizon must be positive");
        EpochConfig {
            epoch_ms,
            horizon_ms,
        }
    }

    /// Number of epochs `d` in the horizon.
    pub fn epoch_count(&self) -> u32 {
        self.horizon_ms.div_ceil(self.epoch_ms) as u32
    }

    /// The epoch index containing millisecond instant `ms` (clamped to the
    /// final epoch).
    pub fn epoch_of_ms(&self, ms: u64) -> u32 {
        ((ms / self.epoch_ms) as u32).min(self.epoch_count().saturating_sub(1))
    }
}

/// A tenant's activity vector: the set of epochs in which the tenant had at
/// least one query executing, stored as sorted disjoint half-open runs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityVector {
    /// Sorted, disjoint, non-adjacent runs `[start, end)` of active epochs.
    runs: Vec<(u32, u32)>,
    /// Total number of epochs `d`.
    d: u32,
}

impl ActivityVector {
    /// An always-inactive vector over `d` epochs.
    pub fn empty(d: u32) -> Self {
        ActivityVector {
            runs: Vec::new(),
            d,
        }
    }

    /// Builds a vector from merged, sorted busy intervals in milliseconds
    /// (half-open `[start, end)`), clipping to the horizon.
    ///
    /// The input must be sorted and non-overlapping (the output of
    /// `merge_intervals`-style preprocessing); this is checked in debug
    /// builds.
    pub fn from_intervals(intervals: &[(u64, u64)], cfg: EpochConfig) -> Self {
        debug_assert!(
            intervals.windows(2).all(|w| w[0].1 <= w[1].0),
            "intervals must be sorted and non-overlapping"
        );
        let d = cfg.epoch_count();
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &(s, e) in intervals {
            let s = s.min(cfg.horizon_ms);
            let e = e.min(cfg.horizon_ms);
            if e <= s {
                continue;
            }
            let first = (s / cfg.epoch_ms) as u32;
            let last = ((e - 1) / cfg.epoch_ms) as u32 + 1; // half-open run end
            match runs.last_mut() {
                Some(prev) if first <= prev.1 => prev.1 = prev.1.max(last),
                _ => runs.push((first, last)),
            }
        }
        ActivityVector { runs, d }
    }

    /// Builds a vector from explicit epoch indices (need not be sorted).
    ///
    /// # Panics
    /// Panics if any index is `>= d`.
    pub fn from_epochs(mut epochs: Vec<u32>, d: u32) -> Self {
        epochs.sort_unstable();
        epochs.dedup();
        if let Some(&max) = epochs.last() {
            assert!(max < d, "epoch index {max} out of range (d = {d})");
        }
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for e in epochs {
            match runs.last_mut() {
                Some(prev) if e == prev.1 => prev.1 += 1,
                _ => runs.push((e, e + 1)),
            }
        }
        ActivityVector { runs, d }
    }

    /// Number of epochs `d` (the dimensionality of the vector).
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Number of active epochs (the L1 norm of the 0/1 vector).
    pub fn active_epochs(&self) -> u32 {
        self.runs.iter().map(|&(s, e)| e - s).sum()
    }

    /// Fraction of epochs that are active.
    pub fn active_ratio(&self) -> f64 {
        if self.d == 0 {
            return 0.0;
        }
        self.active_epochs() as f64 / self.d as f64
    }

    /// Whether the tenant is active in epoch `k`.
    pub fn is_active(&self, k: u32) -> bool {
        self.runs
            .binary_search_by(|&(s, e)| {
                if k < s {
                    std::cmp::Ordering::Greater
                } else if k >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The active runs.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Iterates over every active epoch index in ascending order.
    pub fn iter_epochs(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|&(s, e)| s..e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_config_counts() {
        let c = EpochConfig::new(10_000, 100_000);
        assert_eq!(c.epoch_count(), 10);
        assert_eq!(EpochConfig::new(10_000, 100_001).epoch_count(), 11);
        assert_eq!(c.epoch_of_ms(0), 0);
        assert_eq!(c.epoch_of_ms(9_999), 0);
        assert_eq!(c.epoch_of_ms(10_000), 1);
        assert_eq!(c.epoch_of_ms(999_999), 9); // clamped
    }

    #[test]
    fn from_intervals_builds_runs() {
        let cfg = EpochConfig::new(10, 200);
        // [5, 25) -> epochs 0..3 ; [30, 40) -> epoch 3 ; adjacent => merged.
        let v = ActivityVector::from_intervals(&[(5, 25), (30, 40), (100, 115)], cfg);
        assert_eq!(v.runs(), &[(0, 4), (10, 12)]);
        assert_eq!(v.active_epochs(), 6);
        assert!(v.is_active(0));
        assert!(v.is_active(3));
        assert!(!v.is_active(4));
        assert!(v.is_active(11));
        assert!(!v.is_active(12));
    }

    #[test]
    fn from_epochs_round_trips() {
        let v = ActivityVector::from_epochs(vec![7, 2, 3, 4, 9, 2], 12);
        assert_eq!(v.runs(), &[(2, 5), (7, 8), (9, 10)]);
        let collected: Vec<u32> = v.iter_epochs().collect();
        assert_eq!(collected, vec![2, 3, 4, 7, 9]);
        assert!((v.active_ratio() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vector() {
        let v = ActivityVector::empty(100);
        assert_eq!(v.active_epochs(), 0);
        assert_eq!(v.active_ratio(), 0.0);
        assert!(!v.is_active(0));
    }

    #[test]
    fn intervals_clip_to_horizon() {
        let cfg = EpochConfig::new(10, 100);
        let v = ActivityVector::from_intervals(&[(95, 300)], cfg);
        assert_eq!(v.runs(), &[(9, 10)]);
        let v2 = ActivityVector::from_intervals(&[(150, 300)], cfg);
        assert_eq!(v2.active_epochs(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_epochs_validates_range() {
        let _ = ActivityVector::from_epochs(vec![12], 12);
    }

    #[test]
    fn paper_figure_5_1_example() {
        // Tenant T1 of Figure 5.1: active epochs t1..t6 of d = 10
        // (0-indexed: 0..=5).
        let v = ActivityVector::from_epochs((0..6).collect(), 10);
        assert_eq!(v.active_epochs(), 6);
        assert_eq!(v.runs(), &[(0, 6)]);
    }
}
