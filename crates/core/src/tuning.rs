//! Manual tuning (Chapter 6).
//!
//! The elastic scaler reacts to every sustained RT-TTP drop by starting a
//! new MPPDB — hours of bulk loading. When the drop is *marginal* (say
//! RT-TTP flat at 99.8% against a 99.9% guarantee), a system administrator
//! can instead grow the tuning MPPDB `MPPDB_0` from `U = n_1` to some
//! `U > n_1`: overflow queries (rule 4 of Algorithm 1) are concurrently
//! processed there, and the extra parallelism can absorb the concurrency
//! slowdown so the SLA is met *empirically* (point C of Figure 1.1b).
//!
//! [`recommend_tuning_nodes`] computes the smallest `U` for which an
//! overflow query sharing `MPPDB_0` with `k - 1` others still meets the
//! SLA of an `n_1`-node dedicated MPPDB, under the cost model.

use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::query::QueryTemplate;

/// The smallest tuning-MPPDB size `U ≥ n1` such that a query of the given
/// template, concurrently processed with `concurrency - 1` identical
/// queries on `MPPDB_0`, finishes within `slack ×` its dedicated `n1`-node
/// latency. Returns `None` if no size up to `max_u` suffices (non-linear
/// queries hit their Amdahl ceiling — Chapter 8 discusses this as the
/// "non-linear scale-out problem" of the divergent-design future work).
///
/// `slack` ≥ 1.0 is the SLA tolerance (1.0 = exact).
///
/// # Panics
/// Panics if `n1 == 0`, `concurrency == 0` or `slack < 1.0`.
pub fn recommend_tuning_nodes(
    template: &QueryTemplate,
    data_gb: f64,
    n1: u32,
    concurrency: u32,
    slack: f64,
    max_u: u32,
) -> Option<u32> {
    assert!(n1 > 0, "n1 must be positive");
    assert!(concurrency > 0, "concurrency must be positive");
    assert!(
        slack >= 1.0,
        "slack below 1.0 is unsatisfiable by definition"
    );
    let baseline = isolated_latency_ms(template, data_gb, n1 as usize);
    for u in n1..=max_u.max(n1) {
        // Processor sharing: k concurrent queries each run k-fold slower.
        let shared = isolated_latency_ms(template, data_gb, u as usize) * f64::from(concurrency);
        if shared <= baseline * slack {
            return Some(u);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mppdb_sim::query::TemplateId;

    fn linear() -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), 600.0, 0.0)
    }

    fn nonlinear() -> QueryTemplate {
        QueryTemplate::new(TemplateId(19), 600.0, 0.30)
    }

    #[test]
    fn linear_queries_need_k_times_the_nodes() {
        // Point C of Figure 1.1b: with a linear query, absorbing k = 2
        // concurrent queries needs exactly 2x the parallelism.
        let u = recommend_tuning_nodes(&linear(), 200.0, 2, 2, 1.0, 64).unwrap();
        assert_eq!(u, 4);
        let u3 = recommend_tuning_nodes(&linear(), 200.0, 4, 3, 1.0, 64).unwrap();
        assert_eq!(u3, 12);
    }

    #[test]
    fn no_concurrency_needs_no_extra_nodes() {
        assert_eq!(
            recommend_tuning_nodes(&linear(), 200.0, 4, 1, 1.0, 64),
            Some(4)
        );
    }

    #[test]
    fn nonlinear_queries_may_be_untunable() {
        // Q19-style: serial fraction 0.3 means 2 concurrent queries can
        // never both meet a dedicated 8-node SLA, no matter how many nodes
        // MPPDB_0 gets: the shared latency floor is 2 * f * C, which
        // exceeds the baseline (f + 0.7/8) * C.
        assert_eq!(
            recommend_tuning_nodes(&nonlinear(), 200.0, 8, 2, 1.0, 4096),
            None
        );
    }

    #[test]
    fn slack_makes_non_linear_tuning_feasible_sometimes() {
        // With a 2.2x slack, two concurrent Q19s on a big enough MPPDB_0
        // do fit (2 * 0.3 = 0.6 < 2.2 * (0.3 + 0.7/8) ~ 0.85 per GB-unit).
        let u = recommend_tuning_nodes(&nonlinear(), 200.0, 8, 2, 2.2, 4096);
        assert!(u.is_some());
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn sub_one_slack_panics() {
        let _ = recommend_tuning_nodes(&linear(), 200.0, 2, 2, 0.9, 64);
    }
}
