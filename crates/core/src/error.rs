//! Error types of the Thrifty core.

use mppdb_sim::error::SimError;
use std::fmt;

/// Errors produced by deployment and service operations.
///
/// `#[non_exhaustive]`: new failure modes may be added; always keep a
/// wildcard arm when matching. Implements [`std::error::Error`] with a
/// [`source`](std::error::Error::source) chain through the
/// [`ThriftyError::Sim`] variant, so callers can propagate with `?` into
/// a `Box<dyn Error>` and still reach the simulator cause.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ThriftyError {
    /// The deployment plan needs more nodes than the cluster owns.
    ClusterTooSmall {
        /// Nodes required by the plan.
        required: u64,
        /// Nodes the cluster owns.
        available: usize,
    },
    /// The plan contains no tenant-groups.
    EmptyPlan,
    /// A replayed query references a template the service has no profile
    /// for.
    UnknownTemplate(mppdb_sim::query::TemplateId),
    /// A replayed query references a tenant absent from the deployment.
    UnknownTenant(crate::tenant::TenantId),
    /// A tenant registration reuses an id that is already live (or still
    /// bulk loading toward its parking MPPDB).
    DuplicateTenant(crate::tenant::TenantId),
    /// The service has not been deployed yet.
    NotDeployed,
    /// A query completion was reported for a tenant that has no running
    /// query — a caller bookkeeping error, surfaced as an error (not a
    /// panic) per the library's no-panic discipline.
    NoRunningQuery {
        /// Which bookkeeping component noticed (e.g. "router", "monitor",
        /// "meter").
        component: &'static str,
        /// The tenant whose completion could not be matched.
        tenant: crate::tenant::TenantId,
    },
    /// A configuration knob holds a nonsensical value. Carries a static
    /// description of the rejected knob (see
    /// [`ServiceConfigBuilder::build`](crate::service::ServiceConfigBuilder::build)).
    InvalidConfig(&'static str),
    /// An internal bookkeeping invariant failed to hold; the service state
    /// should be considered corrupt. Carries a static description of the
    /// broken invariant.
    Internal(&'static str),
    /// An underlying simulator error.
    Sim(SimError),
}

impl fmt::Display for ThriftyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThriftyError::ClusterTooSmall {
                required,
                available,
            } => write!(
                f,
                "deployment plan needs {required} nodes but the cluster owns {available}"
            ),
            ThriftyError::EmptyPlan => write!(f, "deployment plan has no tenant-groups"),
            ThriftyError::UnknownTemplate(id) => {
                write!(f, "no latency profile registered for template {id}")
            }
            ThriftyError::UnknownTenant(id) => {
                write!(f, "tenant {id} is not part of the deployment")
            }
            ThriftyError::DuplicateTenant(id) => {
                write!(f, "tenant {id} is already registered")
            }
            ThriftyError::NotDeployed => write!(f, "service has not been deployed"),
            ThriftyError::NoRunningQuery { component, tenant } => write!(
                f,
                "{component}: tenant {tenant} has no running query to finish"
            ),
            ThriftyError::InvalidConfig(what) => {
                write!(f, "invalid service configuration: {what}")
            }
            ThriftyError::Internal(what) => {
                write!(f, "internal bookkeeping invariant violated: {what}")
            }
            ThriftyError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for ThriftyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThriftyError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ThriftyError {
    fn from(e: SimError) -> Self {
        ThriftyError::Sim(e)
    }
}

/// Convenience result alias.
pub type ThriftyResult<T> = Result<T, ThriftyError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_chain_reaches_the_simulator_cause() {
        let err = ThriftyError::from(SimError::TimeInPast);
        let source = err.source().expect("Sim variant must expose a source");
        assert_eq!(source.to_string(), SimError::TimeInPast.to_string());
        assert!(ThriftyError::EmptyPlan.source().is_none());
    }

    #[test]
    fn question_mark_works_with_box_dyn_error() {
        fn fails() -> Result<(), Box<dyn Error>> {
            Err(ThriftyError::NotDeployed)?;
            Ok(())
        }
        let err = fails().unwrap_err();
        assert_eq!(err.to_string(), "service has not been deployed");
    }
}
