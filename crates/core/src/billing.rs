//! The Thrifty pricing model (Chapter 3).
//!
//! "Thrifty adopts a pricing model that charges a tenant based on the number
//! of requested nodes (the degree of parallelism) and its active usage."
//! This module meters both: per tenant, the requested parallelism (a flat
//! subscription component) and the accumulated *active time* — the spans
//! during which the tenant had at least one query executing (the same strong
//! notion of activity the router and monitor use). Combined with the
//! consolidation report, it also answers the provider-side question: what
//! margin does consolidation create over dedicated hardware?

use crate::error::{ThriftyError, ThriftyResult};
use crate::tenant::{Tenant, TenantId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tariff parameters. Currency units are abstract ("credits").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Tariff {
    /// Subscription price per requested node per (billing) day — covers the
    /// MPPDB software license amortization the paper's introduction cites
    /// (USD 15k/core or USD 50k/TB for the commercial product).
    pub node_day_price: f64,
    /// Usage price per node-second of *active* time (queries executing).
    pub active_node_second_price: f64,
}

impl Default for Tariff {
    fn default() -> Self {
        Tariff {
            node_day_price: 10.0,
            active_node_second_price: 0.001,
        }
    }
}

/// Accumulated billing state for one tenant.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct TenantUsage {
    /// Total milliseconds with at least one query executing.
    active_ms: u64,
    /// Number of queries completed.
    queries: u64,
    /// Currently running query count and the instant the tenant became
    /// active (for open-interval accounting).
    running: u32,
    active_since: u64,
}

/// Meters per-tenant activity and produces invoices.
///
/// Feed it the same query start/finish stream the monitor sees; activity is
/// counted once per tenant regardless of intra-tenant concurrency (a batch
/// of ten concurrent queries bills the same wall-span as one query covering
/// it — the tenant pays for *being active*, its MPL is its own business,
/// exactly mirroring the paper's load-balancing stance).
#[derive(Clone, Debug, Default)]
pub struct UsageMeter {
    /// Ordered map: invoices and activity reports drain this in tenant-id
    /// order (lint rule L1).
    usage: BTreeMap<TenantId, TenantUsage>,
}

impl UsageMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        UsageMeter::default()
    }

    /// Records a query start for `tenant` at `now_ms`.
    pub fn on_query_start(&mut self, tenant: TenantId, now_ms: u64) {
        let u = self.usage.entry(tenant).or_default();
        if u.running == 0 {
            u.active_since = now_ms;
        }
        u.running += 1;
    }

    /// Records a query completion for `tenant` at `now_ms`.
    ///
    /// # Errors
    /// [`ThriftyError::NoRunningQuery`] if the tenant has no running query.
    pub fn on_query_finish(&mut self, tenant: TenantId, now_ms: u64) -> ThriftyResult<()> {
        let meter_error = ThriftyError::NoRunningQuery {
            component: "meter",
            tenant,
        };
        let Some(u) = self.usage.get_mut(&tenant) else {
            return Err(meter_error);
        };
        if u.running == 0 {
            return Err(meter_error);
        }
        u.running -= 1;
        u.queries += 1;
        if u.running == 0 {
            u.active_ms += now_ms.saturating_sub(u.active_since);
        }
        Ok(())
    }

    /// Total active milliseconds accumulated for a tenant (closed intervals
    /// only; an open interval is counted when it closes).
    pub fn active_ms(&self, tenant: TenantId) -> u64 {
        self.usage.get(&tenant).map_or(0, |u| u.active_ms)
    }

    /// Completed query count for a tenant.
    pub fn query_count(&self, tenant: TenantId) -> u64 {
        self.usage.get(&tenant).map_or(0, |u| u.queries)
    }

    /// Every metered tenant's total active milliseconds, sorted by tenant
    /// id. Open activity intervals are not included (they are counted when
    /// they close).
    pub fn all_active_ms(&self) -> Vec<(TenantId, u64)> {
        let mut out: Vec<(TenantId, u64)> =
            self.usage.iter().map(|(&t, u)| (t, u.active_ms)).collect();
        out.sort_unstable_by_key(|&(t, _)| t);
        out
    }

    /// Produces the invoice for a tenant over `billing_days` days.
    pub fn invoice(&self, tenant: &Tenant, tariff: &Tariff, billing_days: f64) -> Invoice {
        let active_ms = self.active_ms(tenant.id);
        let subscription = tariff.node_day_price * f64::from(tenant.nodes) * billing_days;
        let usage =
            tariff.active_node_second_price * f64::from(tenant.nodes) * (active_ms as f64 / 1000.0);
        Invoice {
            tenant: tenant.id,
            requested_nodes: tenant.nodes,
            active_ms,
            queries: self.query_count(tenant.id),
            subscription,
            usage,
        }
    }
}

/// One tenant's bill.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Invoice {
    /// The billed tenant.
    pub tenant: TenantId,
    /// Requested parallelism (the subscription driver).
    pub requested_nodes: u32,
    /// Metered active time in ms (the usage driver).
    pub active_ms: u64,
    /// Completed queries in the period.
    pub queries: u64,
    /// Subscription component in credits.
    pub subscription: f64,
    /// Usage component in credits.
    pub usage: f64,
}

impl Invoice {
    /// Total credits due.
    pub fn total(&self) -> f64 {
        self.subscription + self.usage
    }
}

/// Provider-side economics of a consolidated deployment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ProviderEconomics {
    /// Revenue: sum of tenant invoices (credits).
    pub revenue: f64,
    /// Cost of running the consolidated cluster (credits; nodes actually
    /// powered × node-day cost × days).
    pub consolidated_cost: f64,
    /// What the same tenants would cost on dedicated clusters.
    pub dedicated_cost: f64,
}

impl ProviderEconomics {
    /// Computes the provider's picture for a deployment.
    pub fn compute(
        invoices: &[Invoice],
        nodes_used: u64,
        nodes_requested: u64,
        node_day_cost: f64,
        billing_days: f64,
    ) -> Self {
        ProviderEconomics {
            revenue: invoices.iter().map(Invoice::total).sum(),
            consolidated_cost: nodes_used as f64 * node_day_cost * billing_days,
            dedicated_cost: nodes_requested as f64 * node_day_cost * billing_days,
        }
    }

    /// The margin consolidation creates versus running dedicated clusters
    /// at the same revenue.
    pub fn consolidation_gain(&self) -> f64 {
        self.dedicated_cost - self.consolidated_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TenantId = TenantId(0);

    #[test]
    fn activity_is_metered_per_tenant_not_per_query() {
        let mut m = UsageMeter::new();
        // Two overlapping queries: active span is their union.
        m.on_query_start(T0, 0);
        m.on_query_start(T0, 500);
        m.on_query_finish(T0, 800).unwrap();
        m.on_query_finish(T0, 1_000).unwrap();
        assert_eq!(m.active_ms(T0), 1_000);
        assert_eq!(m.query_count(T0), 2);
        // A later, disjoint query adds its own span.
        m.on_query_start(T0, 5_000);
        m.on_query_finish(T0, 5_400).unwrap();
        assert_eq!(m.active_ms(T0), 1_400);
    }

    #[test]
    fn invoice_combines_subscription_and_usage() {
        let mut m = UsageMeter::new();
        m.on_query_start(T0, 0);
        m.on_query_finish(T0, 10_000).unwrap(); // 10 s active
        let tenant = Tenant::new(T0, 4, 400.0);
        let invoice = m.invoice(&tenant, &Tariff::default(), 30.0);
        // Subscription: 10 credits/node/day * 4 nodes * 30 days = 1200.
        assert!((invoice.subscription - 1_200.0).abs() < 1e-9);
        // Usage: 0.001 * 4 nodes * 10 s = 0.04.
        assert!((invoice.usage - 0.04).abs() < 1e-9);
        assert!((invoice.total() - 1_200.04).abs() < 1e-9);
    }

    #[test]
    fn idle_tenant_pays_subscription_only() {
        let m = UsageMeter::new();
        let tenant = Tenant::new(T0, 2, 200.0);
        let invoice = m.invoice(&tenant, &Tariff::default(), 30.0);
        assert_eq!(invoice.active_ms, 0);
        assert!((invoice.usage - 0.0).abs() < 1e-12);
        assert!(invoice.subscription > 0.0);
    }

    #[test]
    fn provider_economics_reflect_consolidation() {
        let invoices = vec![];
        let econ = ProviderEconomics::compute(&invoices, 2_000, 10_000, 5.0, 30.0);
        assert!((econ.consolidated_cost - 300_000.0).abs() < 1e-9);
        assert!((econ.dedicated_cost - 1_500_000.0).abs() < 1e-9);
        assert!((econ.consolidation_gain() - 1_200_000.0).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_finish_is_an_error() {
        let mut m = UsageMeter::new();
        assert!(matches!(
            m.on_query_finish(T0, 10),
            Err(ThriftyError::NoRunningQuery {
                component: "meter",
                ..
            })
        ));
    }
}
