//! SLA accounting (requirement R3).
//!
//! The performance SLA of MPPDBaaS is the *query latency before
//! consolidation*: a query meets its SLA if, on the consolidated cluster,
//! it finishes no slower than it did on the tenant's dedicated MPPDB (the
//! `sla_latency` recorded in the tenant's own log). Normalized performance
//! is `achieved / baseline`: 1.0 means "as fast as it should be when
//! measured in an isolated environment" (the y-axis of Figures 7.7b/d).

use crate::routing::RouteKind;
use crate::tenant::TenantId;
use mppdb_sim::query::TemplateId;
use mppdb_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// SLA evaluation policy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlaPolicy {
    /// Relative tolerance: a query *meets* the SLA when
    /// `achieved ≤ baseline · (1 + tolerance)`. A small tolerance absorbs
    /// millisecond rounding and the ±1-node discretization of the replay;
    /// the default is 5%.
    pub tolerance: f64,
}

impl Default for SlaPolicy {
    fn default() -> Self {
        SlaPolicy { tolerance: 0.05 }
    }
}

impl SlaPolicy {
    /// Whether an achieved latency meets the SLA against a baseline.
    pub fn met(&self, achieved: SimDuration, baseline: SimDuration) -> bool {
        if baseline == SimDuration::ZERO {
            return true;
        }
        achieved.as_ms() as f64 <= baseline.as_ms() as f64 * (1.0 + self.tolerance)
    }
}

/// The SLA verdict of one completed query.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlaRecord {
    /// The tenant.
    pub tenant: TenantId,
    /// The tenant-group the tenant belonged to when the query ran.
    pub group: usize,
    /// Which template ran.
    pub template: TemplateId,
    /// Submission instant (log timeline).
    pub submit: SimTime,
    /// Achieved latency on the consolidated cluster.
    pub achieved: SimDuration,
    /// Baseline latency from the tenant's dedicated-MPPDB log.
    pub baseline: SimDuration,
    /// `achieved / baseline` (1.0 = no consolidation penalty).
    pub normalized: f64,
    /// Whether the SLA was met under the policy.
    pub met: bool,
    /// Which routing rule served the query (overflow = rule 4 of
    /// Algorithm 1, the only SLA-risky path).
    pub route: RouteKind,
}

impl SlaRecord {
    /// Builds a record, computing `normalized` and `met`.
    #[allow(clippy::too_many_arguments)] // one argument per record field
    pub fn evaluate(
        tenant: TenantId,
        group: usize,
        template: TemplateId,
        submit: SimTime,
        achieved: SimDuration,
        baseline: SimDuration,
        route: RouteKind,
        policy: &SlaPolicy,
    ) -> Self {
        let normalized = if baseline == SimDuration::ZERO {
            1.0
        } else {
            achieved.as_ms() as f64 / baseline.as_ms() as f64
        };
        SlaRecord {
            tenant,
            group,
            template,
            submit,
            achieved,
            baseline,
            normalized,
            met: policy.met(achieved, baseline),
            route,
        }
    }
}

/// Aggregate SLA compliance over a set of records.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlaSummary {
    /// Total queries.
    pub total: usize,
    /// Queries that met the SLA.
    pub met: usize,
    /// Worst (largest) normalized performance observed — the true maximum,
    /// which may be below 1.0 when every query beat its baseline. For an
    /// empty record set the convention is 1.0 ("no slowdown observed").
    pub worst_normalized: f64,
}

/// `Default` is the empty summary and agrees with
/// [`SlaSummary::from_records`] on an empty slice.
impl Default for SlaSummary {
    fn default() -> Self {
        SlaSummary::from_records(&[])
    }
}

impl SlaSummary {
    /// Summarizes a slice of records.
    pub fn from_records(records: &[SlaRecord]) -> Self {
        let worst_normalized = records
            .iter()
            .map(|r| r.normalized)
            // lint: allow(float-merge) — max is order-insensitive.
            .fold(f64::NEG_INFINITY, f64::max);
        SlaSummary {
            total: records.len(),
            met: records.iter().filter(|r| r.met).count(),
            worst_normalized: if records.is_empty() {
                1.0
            } else {
                worst_normalized
            },
        }
    }

    /// Fraction of queries that met the SLA (1.0 when empty).
    pub fn compliance(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.met as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(achieved_ms: u64, baseline_ms: u64) -> SlaRecord {
        SlaRecord::evaluate(
            TenantId(1),
            0,
            TemplateId(101),
            SimTime::ZERO,
            SimDuration::from_ms(achieved_ms),
            SimDuration::from_ms(baseline_ms),
            RouteKind::TuningFree,
            &SlaPolicy::default(),
        )
    }

    #[test]
    fn faster_than_baseline_meets() {
        let r = record(500, 1_000);
        assert!(r.met);
        assert!((r.normalized - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tolerance_absorbs_small_slowdowns() {
        assert!(record(1_040, 1_000).met);
        assert!(!record(1_200, 1_000).met);
    }

    #[test]
    fn zero_baseline_is_vacuously_met() {
        let r = record(1_000, 0);
        assert!(r.met);
        assert_eq!(r.normalized, 1.0);
    }

    #[test]
    fn summary_aggregates() {
        let records = vec![record(500, 1_000), record(2_000, 1_000), record(900, 1_000)];
        let s = SlaSummary::from_records(&records);
        assert_eq!(s.total, 3);
        assert_eq!(s.met, 2);
        assert!((s.compliance() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.worst_normalized - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_compliant() {
        let s = SlaSummary::from_records(&[]);
        assert_eq!(s.compliance(), 1.0);
        assert_eq!(s.worst_normalized, 1.0);
    }

    #[test]
    fn default_matches_the_empty_summary() {
        let d = SlaSummary::default();
        let e = SlaSummary::from_records(&[]);
        assert_eq!(d.total, e.total);
        assert_eq!(d.met, e.met);
        assert_eq!(d.worst_normalized, e.worst_normalized);
    }

    #[test]
    fn worst_normalized_is_the_true_max_even_below_one() {
        // Every query beat its baseline: the worst must report the actual
        // maximum (0.9), not clamp to 1.0.
        let records = vec![record(500, 1_000), record(900, 1_000)];
        let s = SlaSummary::from_records(&records);
        assert!((s.worst_normalized - 0.9).abs() < 1e-12);
    }
}
