//! Clock adapter for hosting the service behind a real or simulated
//! timeline.
//!
//! Everything in this crate is clock-free (lint rule L2): the service
//! advances along an explicit log timeline fed to
//! [`ThriftyService::advance_log_time`](crate::service::ThriftyService::advance_log_time).
//! A long-running host — the `thriftyd` control-plane daemon — needs to
//! decide *where that timeline comes from*: replayed instants in tests and
//! fuzz harnesses, the wall clock in production. [`ClockSource`] is that
//! seam. The simulated implementation lives here so every deterministic
//! consumer (tests, `fault_fuzz --daemon`, the byte-identity suite) shares
//! one definition; the wall-clock implementation lives in `crates/daemon`,
//! the only crate permitted to read ambient time.
//!
//! A clock source reports **milliseconds elapsed since the host started**,
//! not absolute log time: the host anchors the stream at the service's
//! [`log_epoch`](crate::service::ThriftyService::log_epoch) so a daemon
//! restarted against a warm cluster replays from the deployment instant.

/// A monotone source of elapsed milliseconds driving a service host's
/// event loop.
///
/// Implementations must be monotone: `now_ms` never decreases between
/// calls. The simulated clock only moves when [`advance`](Self::advance)
/// is called; a wall clock moves on its own and rejects manual advances.
pub trait ClockSource {
    /// Milliseconds elapsed on this clock since it was created.
    fn now_ms(&mut self) -> u64;

    /// Manually advances the clock by `ms`, returning `true` when the
    /// clock supports manual advancement (simulated clocks). A wall clock
    /// returns `false` and ignores the request — callers surface that as
    /// an operator error rather than silently warping time.
    fn advance(&mut self, ms: u64) -> bool;

    /// Whether this clock is simulated (deterministic, manually advanced).
    fn is_simulated(&self) -> bool;
}

/// The deterministic clock: elapsed time is exactly the sum of explicit
/// [`advance`](ClockSource::advance) calls.
///
/// Used by tests, the determinism suite, and `fault_fuzz --daemon`, where
/// the schedule itself owns time. Two hosts driven by the same advance
/// sequence observe byte-identical timelines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimClock {
    elapsed_ms: u64,
}

impl SimClock {
    /// A simulated clock at elapsed time zero.
    pub fn new() -> Self {
        SimClock::default()
    }
}

impl ClockSource for SimClock {
    fn now_ms(&mut self) -> u64 {
        self.elapsed_ms
    }

    fn advance(&mut self, ms: u64) -> bool {
        self.elapsed_ms = self.elapsed_ms.saturating_add(ms);
        true
    }

    fn is_simulated(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_moves_only_on_advance() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now_ms(), 0);
        assert_eq!(clock.now_ms(), 0);
        assert!(clock.advance(250));
        assert!(clock.advance(750));
        assert_eq!(clock.now_ms(), 1_000);
        assert!(clock.is_simulated());
    }

    #[test]
    fn sim_clock_advance_saturates() {
        let mut clock = SimClock::new();
        assert!(clock.advance(u64::MAX));
        assert!(clock.advance(1));
        assert_eq!(clock.now_ms(), u64::MAX);
    }

    #[test]
    fn sim_clock_is_usable_as_a_trait_object() {
        let mut clock: Box<dyn ClockSource> = Box::new(SimClock::new());
        assert!(clock.advance(5));
        assert_eq!(clock.now_ms(), 5);
    }
}
