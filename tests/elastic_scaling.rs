//! Lightweight elastic scaling, end to end (Chapter 5.1): detection,
//! identification, bulk-load delay, rerouting.

use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::query::{QueryTemplate, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use thrifty::prelude::*;

const NODES: u32 = 4;
const DATA_GB: f64 = 400.0;

fn template() -> QueryTemplate {
    QueryTemplate::new(TemplateId(1), 60.0, 0.0)
}

fn baseline_ms() -> f64 {
    isolated_latency_ms(&template(), DATA_GB, NODES as usize)
}

fn scenario(elastic: bool, history: bool) -> (ThriftyService, Vec<IncomingQuery>) {
    let members: Vec<Tenant> = (0..6)
        .map(|i| Tenant::new(TenantId(i), NODES, DATA_GB))
        .collect();
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members.clone(), 2, NODES)],
    };
    let mut service = ThriftyService::deploy(
        &plan,
        20,
        [template()],
        ServiceConfig::builder()
            .elastic_scaling(elastic)
            .scaling_check_interval_ms(60_000)
            .build()
            .expect("valid service config"),
    )
    .unwrap();
    if history {
        service.set_historical_activity(
            members
                .iter()
                .map(|m| (m.id, if m.id == TenantId(0) { 0.05 } else { 0.085 })),
        );
    }

    let baseline = SimDuration::from_ms_f64(baseline_ms());
    let mut queries = Vec::new();
    // Tenants 1..6: a 20-minute burst every 4 hours, staggered by 10 min.
    for t in 1..6u32 {
        let mut burst = u64::from(t) * 600_000;
        while burst < 48 * 3_600_000 {
            for k in 0..100u64 {
                queries.push(IncomingQuery {
                    tenant: TenantId(t),
                    submit: SimTime::from_ms(burst + k * 12_000),
                    template: template().id,
                    baseline,
                });
            }
            burst += 4 * 3_600_000;
        }
    }
    // Tenant 0 hammers continuously from hour 8.
    let mut at = 8 * 3_600_000u64;
    while at < 48 * 3_600_000 {
        queries.push(IncomingQuery {
            tenant: TenantId(0),
            submit: SimTime::from_ms(at),
            template: template().id,
            baseline,
        });
        at += (baseline_ms() * 1.2) as u64;
    }
    queries.sort_by_key(|q| (q.submit, q.tenant));
    (service, queries)
}

#[test]
fn over_active_tenant_is_detected_and_relocated() {
    let (mut service, queries) = scenario(true, true);
    let report = service.replay(queries).unwrap();
    assert!(!report.scaling_events.is_empty(), "scaling must trigger");
    let ev = &report.scaling_events[0];
    assert_eq!(
        ev.over_active,
        vec![TenantId(0)],
        "the hammer is the deviant"
    );
    assert!(ev.triggered_at >= SimTime::from_secs(8 * 3600));
    let ready = ev.ready_at.expect("the scale-out MPPDB must come up");
    // Bulk load of one 400 GB tenant per the Table 5.1 model: ~5.7 h plus
    // the 4-node start-up.
    let load_h = (ready.as_ms() - ev.triggered_at.as_ms()) as f64 / 3_600_000.0;
    assert!((4.0..9.0).contains(&load_h), "load took {load_h:.1} h");
    assert_eq!(service.group_of(TenantId(0)), Some(1), "tenant rerouted");
    assert_eq!(service.group_of(TenantId(1)), Some(0));
}

#[test]
fn scaling_improves_sla_compliance() {
    let (mut off_service, queries) = scenario(false, true);
    let off = off_service.replay(queries.clone()).unwrap();
    let (mut on_service, queries) = scenario(true, true);
    let on = on_service.replay(queries).unwrap();
    assert!(off.scaling_events.is_empty());
    assert!(
        on.summary.compliance() > off.summary.compliance(),
        "scaling ON {:.4} must beat OFF {:.4}",
        on.summary.compliance(),
        off.summary.compliance()
    );
}

#[test]
fn without_history_the_grouping_based_identification_still_works() {
    let (mut service, queries) = scenario(true, false);
    let report = service.replay(queries).unwrap();
    assert!(
        !report.scaling_events.is_empty(),
        "scaling must still trigger without historical ratios"
    );
    // Every moved tenant must actually leave the original group.
    for ev in &report.scaling_events {
        for t in &ev.over_active {
            assert_ne!(service.group_of(*t), Some(ev.group));
        }
    }
}

#[test]
fn disabled_scaling_never_scales() {
    let (mut service, queries) = scenario(false, true);
    let report = service.replay(queries).unwrap();
    assert!(report.scaling_events.is_empty());
    assert_eq!(service.group_count(), 1);
}
