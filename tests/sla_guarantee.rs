//! Guarantee 1 (Chapter 4.4), exercised end to end: *no matter* whether a
//! tenant's queries are linear or non-linear scale-out, submitted
//! sequentially or in concurrent batches, the TDD meets the SLAs of up to
//! `A` concurrently active tenants.

use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::query::{QueryTemplate, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use thrifty::prelude::*;

fn plan(tenants: u32, nodes: u32, a: u32) -> DeploymentPlan {
    let members: Vec<Tenant> = (0..tenants)
        .map(|i| Tenant::new(TenantId(i), nodes, 100.0 * f64::from(nodes)))
        .collect();
    DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members, a, nodes)],
    }
}

fn service(tenants: u32, nodes: u32, a: u32, templates: &[QueryTemplate]) -> ThriftyService {
    ThriftyService::deploy(
        &plan(tenants, nodes, a),
        (nodes * a) as usize + 4,
        templates.iter().copied(),
        ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config"),
    )
    .unwrap()
}

/// Builds a query for tenant `t` at second `s` with the SLA baseline equal
/// to the dedicated latency on the tenant's requested nodes.
fn q(t: u32, s: u64, template: QueryTemplate, nodes: u32) -> IncomingQuery {
    let data_gb = 100.0 * f64::from(nodes);
    IncomingQuery {
        tenant: TenantId(t),
        submit: SimTime::from_secs(s),
        template: template.id,
        baseline: SimDuration::from_ms_f64(isolated_latency_ms(&template, data_gb, nodes as usize)),
    }
}

#[test]
fn a_concurrent_tenants_all_meet_sla_with_linear_queries() {
    let linear = QueryTemplate::new(TemplateId(1), 300.0, 0.0);
    for a in 1..=4u32 {
        let mut s = service(6, 4, a, &[linear]);
        // Exactly `a` tenants concurrently active, each with a burst of 3
        // queries (intra-tenant concurrency is the tenant's own issue, so
        // give them sequential queries here).
        let mut queries = Vec::new();
        for t in 0..a {
            for k in 0..3u64 {
                queries.push(q(t, k * 400, linear, 4));
            }
        }
        queries.sort_by_key(|x| (x.submit, x.tenant));
        let report = s.replay(queries).unwrap();
        assert_eq!(
            report.summary.met, report.summary.total,
            "A={a}: all queries of <=A active tenants must meet the SLA"
        );
    }
}

#[test]
fn a_concurrent_tenants_meet_sla_with_non_linear_queries() {
    // Guarantee 1 explicitly covers non-linear scale-out queries: each
    // active tenant gets an exclusive MPPDB of at least its requested
    // parallelism, so Amdahl saturation cannot hurt it.
    let nonlinear = QueryTemplate::new(TemplateId(19), 300.0, 0.3);
    let mut s = service(5, 4, 3, &[nonlinear]);
    let queries = vec![
        q(0, 0, nonlinear, 4),
        q(1, 1, nonlinear, 4),
        q(2, 2, nonlinear, 4),
    ];
    let report = s.replay(queries).unwrap();
    assert_eq!(report.summary.met, report.summary.total);
}

#[test]
fn concurrent_batches_of_one_tenant_share_one_mppdb() {
    // A tenant submitting a concurrent batch (report generation, MPL > 1)
    // is served by ONE dedicated MPPDB: the batch slows itself down (its
    // own node-choice), but other tenants are unaffected.
    let linear = QueryTemplate::new(TemplateId(1), 300.0, 0.0);
    let mut s = service(3, 2, 2, &[linear]);
    let mut queries = vec![
        q(0, 0, linear, 2),
        q(0, 0, linear, 2),
        q(0, 0, linear, 2), // tenant 0: batch of three, concurrent
        q(1, 1, linear, 2), // tenant 1: a single query
    ];
    queries.sort_by_key(|x| (x.submit, x.tenant));
    let report = s.replay(queries).unwrap();
    let t1: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.tenant == TenantId(1))
        .collect();
    assert_eq!(t1.len(), 1);
    assert!(
        t1[0].met,
        "the other tenant must be unaffected by the batch"
    );
    // The batch queries shared their MPPDB 3-ways.
    let t0_worst = report
        .records
        .iter()
        .filter(|r| r.tenant == TenantId(0))
        .map(|r| r.normalized)
        .fold(0.0, f64::max);
    assert!(t0_worst > 2.5, "the batch must self-interfere: {t0_worst}");
}

#[test]
fn the_a_plus_first_tenant_overflows_and_may_violate() {
    let linear = QueryTemplate::new(TemplateId(1), 300.0, 0.0);
    let mut s = service(4, 2, 2, &[linear]);
    let queries = vec![
        q(0, 0, linear, 2),
        q(1, 1, linear, 2),
        q(2, 2, linear, 2), // third concurrently active tenant, A = 2
    ];
    let report = s.replay(queries).unwrap();
    assert_eq!(report.summary.total, 3);
    assert!(
        report
            .records
            .iter()
            .any(|r| r.route == RouteKind::Overflow),
        "the third tenant must take the overflow path"
    );
    assert!(
        report.summary.met < 3,
        "overflow concurrency must cost someone"
    );
}

#[test]
fn a_bigger_tuning_mppdb_absorbs_overflow_for_linear_queries() {
    // Chapter 6 (manual tuning): growing U lets overflow queries meet the
    // SLA empirically. U = 2x the request absorbs one overflow query of a
    // linear template (2 concurrent at double parallelism = dedicated speed).
    let linear = QueryTemplate::new(TemplateId(1), 300.0, 0.0);
    let members: Vec<Tenant> = (0..4).map(|i| Tenant::new(TenantId(i), 2, 200.0)).collect();
    let mut group = TenantGroupPlan::new(members, 2, 2);
    let u = recommend_tuning_nodes(&linear, 200.0, 2, 2, 1.0, 64).unwrap();
    assert_eq!(u, 4);
    group.set_tuning_nodes(u);
    let plan = DeploymentPlan {
        groups: vec![group],
    };
    let mut s = ThriftyService::deploy(
        &plan,
        12,
        [linear],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config"),
    )
    .unwrap();
    // Three concurrently active tenants on A = 2 MPPDBs: tenant 0 grabs the
    // (big) tuning MPPDB, tenant 1 the other; tenant 2 overflows onto
    // MPPDB_0 — which now has 4 nodes, so both queries there still finish
    // within the 2-node baseline.
    let queries = vec![q(0, 0, linear, 2), q(1, 1, linear, 2), q(2, 2, linear, 2)];
    let report = s.replay(queries).unwrap();
    assert_eq!(
        report.summary.met, 3,
        "with U = 4 every query must meet its SLA: {:?}",
        report.records
    );
}
