//! Operational features end to end: billing, burst exclusion, node-failure
//! resilience, and the re-consolidation list.

use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::query::{QueryTemplate, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use thrifty::prelude::*;

fn template() -> QueryTemplate {
    QueryTemplate::new(TemplateId(1), 100.0, 0.0)
}

fn baseline(nodes: u32) -> SimDuration {
    SimDuration::from_ms_f64(isolated_latency_ms(
        &template(),
        100.0 * f64::from(nodes),
        nodes as usize,
    ))
}

fn q(t: u32, at_s: u64, nodes: u32) -> IncomingQuery {
    IncomingQuery {
        tenant: TenantId(t),
        submit: SimTime::from_secs(at_s),
        template: template().id,
        baseline: baseline(nodes),
    }
}

fn small_service(a: u32) -> ThriftyService {
    let members: Vec<Tenant> = (0..3).map(|i| Tenant::new(TenantId(i), 2, 200.0)).collect();
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members, a, 2)],
    };
    ThriftyService::deploy(
        &plan,
        12,
        [template()],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config"),
    )
    .unwrap()
}

#[test]
fn invoices_reflect_metered_usage() {
    let mut s = small_service(2);
    // Tenant 0 runs two disjoint 10 s queries; tenant 1 runs none.
    let report = s.replay([q(0, 0, 2), q(0, 100, 2)]).unwrap();
    assert_eq!(report.summary.total, 2);
    let tariff = Tariff::default();
    let inv0 = s.invoice(TenantId(0), &tariff, 30.0).unwrap();
    let inv1 = s.invoice(TenantId(1), &tariff, 30.0).unwrap();
    // 100 ms/GB * 200 GB / 2 nodes = 10 s per query -> 20 s active.
    assert_eq!(inv0.active_ms, 20_000);
    assert_eq!(inv0.queries, 2);
    assert_eq!(inv1.active_ms, 0);
    // Same subscription (same requested nodes), different usage.
    assert!((inv0.subscription - inv1.subscription).abs() < 1e-9);
    assert!(inv0.usage > inv1.usage);
    assert!(s.invoice(TenantId(9), &tariff, 30.0).is_err());
}

#[test]
fn node_failure_degrades_then_recovers_transparently() {
    let mut s = small_service(2);
    let victim = s
        .cluster()
        .instance(s.group_instances(0).unwrap()[0])
        .unwrap()
        .nodes()[0];
    // Fail a node of MPPDB_0 at t = 50 s; a spare exists, so parallelism is
    // restored after the single-node start-up (~5.4 min in the Table 5.1
    // model).
    s.inject_node_failure(victim, SimTime::from_secs(50))
        .unwrap();
    // A query right after the failure runs on 1 node instead of 2: 2x the
    // baseline, an SLA violation the cluster absorbs without going down.
    let report = s.replay([q(0, 0, 2), q(0, 60, 2), q(0, 2_000, 2)]).unwrap();
    assert_eq!(report.summary.total, 3, "no query is lost to the failure");
    let by_time: Vec<bool> = report.records.iter().map(|r| r.met).collect();
    assert!(by_time[0], "before the failure: met");
    assert!(!by_time[1], "during the degraded window: violated");
    assert!(by_time[2], "after the replacement node joined: met again");
}

#[test]
fn mid_flight_failure_lands_between_healthy_and_degraded_latency() {
    let mut s = small_service(2);
    let inst = s.group_instances(0).unwrap()[0];
    let victim = s.cluster().instance(inst).unwrap().nodes()[0];
    // The solo query needs 10 s on 2 nodes. Its node dies at the halfway
    // point, so the second half of the work runs at 1/2 speed: 5 s healthy
    // + 10 s degraded = 15 s, strictly between the all-healthy (10 s) and
    // all-degraded (20 s) dedicated latencies.
    s.inject_node_failure(victim, SimTime::from_secs(5))
        .unwrap();
    let report = s.replay([q(0, 0, 2)]).unwrap();
    assert_eq!(report.records.len(), 1);
    let r = &report.records[0];
    assert_eq!(r.achieved.as_ms(), 15_000);
    assert!(r.achieved.as_ms() > 10_000 && r.achieved.as_ms() < 20_000);
    assert!(!r.met, "half the run at half speed busts the 1.0x SLO");
    // The spare joins after the single-node start-up (325 s in the Table
    // 5.1 model), bounding the instance's recorded degraded-mode time.
    let stats = s.cluster().instance(inst).unwrap().stats();
    assert_eq!(stats.degraded_ms, 325_000);
}

#[test]
fn reconsolidation_list_collects_scaled_groups() {
    // Reuse the elastic-scaling scenario shape: tenant 0 hammers, scaling
    // moves it, and afterwards both the shrunken parent group and the
    // scale-out group appear on the re-consolidation list.
    let members: Vec<Tenant> = (0..4).map(|i| Tenant::new(TenantId(i), 2, 200.0)).collect();
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members.clone(), 1, 2)],
    };
    let mut s = ThriftyService::deploy(
        &plan,
        12,
        [template()],
        ServiceConfig::builder()
            .elastic_scaling(true)
            .scaling_check_interval_ms(60_000)
            .build()
            .expect("valid service config"),
    )
    .unwrap();
    s.set_historical_activity(members.iter().map(|m| (m.id, 0.02)));
    assert!(s.reconsolidation_list().is_empty());

    let mut queries = Vec::new();
    // Tenant 0: continuous. Tenants 1..4: hourly singles (so the group
    // regularly has 2 active tenants against a budget of 1).
    for k in 0..2_000u64 {
        queries.push(q(0, k * 11, 2));
    }
    for t in 1..4u32 {
        for k in 0..6u64 {
            queries.push(q(t, 120 + u64::from(t) * 37 + k * 3_600, 2));
        }
    }
    queries.sort_by_key(|x| (x.submit, x.tenant));
    let report = s.replay(queries).unwrap();
    assert!(!report.scaling_events.is_empty(), "must scale");
    let list = s.reconsolidation_list();
    // Everyone is on the list: the moved tenant (scale-out group) and the
    // remaining members (their group has scaled).
    assert_eq!(list.len(), 4, "{list:?}");
}

#[test]
fn observed_activity_ratios_feed_the_next_cycle() {
    let mut s = small_service(2);
    // Tenant 0 active for two disjoint 10 s queries, tenant 1 for one.
    s.replay([q(0, 0, 2), q(0, 100, 2), q(1, 200, 2)]).unwrap();
    let ratios = s.observed_activity_ratios();
    assert_eq!(ratios.len(), 2);
    let get = |t: u32| ratios.iter().find(|(id, _)| *id == TenantId(t)).unwrap().1;
    // 20 s vs 10 s of activity over the same elapsed span.
    assert!(get(0) > get(1));
    assert!((get(0) / get(1) - 2.0).abs() < 0.05, "{ratios:?}");
    assert!(ratios.iter().all(|&(_, r)| (0.0..=1.0).contains(&r)));
}

#[test]
fn burst_exclusion_removes_periodic_tenants_from_the_plan() {
    const DAY: u64 = 24 * 3_600_000;
    let horizon = 28 * DAY;
    // A steady tenant and a fiscal-period tenant bursting every 7 days.
    let steady = (0..28u64)
        .map(|d| (d * DAY + 9 * 3_600_000, d * DAY + 10 * 3_600_000))
        .collect::<Vec<_>>();
    let mut bursty = steady.clone();
    for d in [6u64, 13, 20, 27] {
        bursty.push((d * DAY + 10 * 3_600_000, d * DAY + 22 * 3_600_000));
    }
    bursty.sort_unstable();
    let histories = vec![
        TenantHistory::new(Tenant::new(TenantId(0), 4, 400.0), steady),
        TenantHistory::new(Tenant::new(TenantId(1), 4, 400.0), bursty),
    ];
    let advise_with = |detector: Option<BurstDetector>| {
        DeploymentAdvisor::new(AdvisorConfig {
            replication: 2,
            sla_p: 0.999,
            epoch: EpochConfig::new(10_000, horizon),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy {
                burst_detector: detector,
                ..ExclusionPolicy::default()
            },
        })
        .advise(&histories)
    };
    let without = advise_with(None);
    assert!(without.burst_excluded.is_empty());
    assert_eq!(without.plan.tenant_count(), 2);

    let with = advise_with(Some(BurstDetector::default()));
    assert_eq!(with.burst_excluded.len(), 1);
    let (tenant, series) = &with.burst_excluded[0];
    assert_eq!(tenant.id, TenantId(1));
    assert_eq!(series.period_ms, 7 * DAY);
    assert_eq!(series.next_predicted_ms, 34 * DAY);
    assert_eq!(with.plan.tenant_count(), 1);
}
