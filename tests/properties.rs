//! Randomized invariant tests on the core data structures, spanning all
//! three crates.
//!
//! These were originally `proptest` properties; the offline build has no
//! proptest (see shims/README.md), so each property is exercised over a
//! fixed number of deterministically seeded random cases instead. The
//! seeds are per-test constants, so failures are exactly reproducible.

use mppdb_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thrifty::prelude::*;
use thrifty_workload::activity::{epochs_from_intervals, merge_intervals};

/// Cases per property; each case draws fresh random inputs.
const CASES: usize = 64;

/// Arbitrary raw (possibly overlapping, unsorted, possibly empty)
/// intervals, mirroring the old proptest strategy.
fn raw_intervals(rng: &mut SmallRng) -> Vec<(u64, u64)> {
    let n = rng.gen_range(0usize..40);
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0u64..5_000);
            let len = rng.gen_range(0u64..2_000);
            (s, s + len)
        })
        .collect()
}

/// A random set of active epoch indices below `bound`.
fn epoch_set(rng: &mut SmallRng, bound: u32, max_len: usize) -> Vec<u32> {
    let n = rng.gen_range(0usize..max_len);
    let mut set: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..bound)).collect();
    set.sort_unstable();
    set.dedup();
    set
}

#[test]
fn merged_intervals_are_sorted_disjoint_and_cover_the_same_points() {
    let mut rng = SmallRng::seed_from_u64(0x1001);
    for case in 0..CASES {
        let raw = raw_intervals(&mut rng);
        let merged = merge_intervals(raw.clone());
        // Sorted and strictly disjoint.
        for w in merged.windows(2) {
            assert!(w[0].1 < w[1].0, "case {case}: overlap in {merged:?}");
        }
        for &(s, e) in &merged {
            assert!(s < e, "case {case}: empty interval in {merged:?}");
        }
        // Point-coverage equivalence on a sample of probes.
        for probe in (0..7_100).step_by(97) {
            let in_raw = raw.iter().any(|&(s, e)| s <= probe && probe < e);
            let in_merged = merged.iter().any(|&(s, e)| s <= probe && probe < e);
            assert_eq!(in_raw, in_merged, "case {case}: probe {probe}");
        }
    }
}

#[test]
fn activity_vector_agrees_with_scalar_epochization() {
    let mut rng = SmallRng::seed_from_u64(0x1002);
    for case in 0..CASES {
        let raw = raw_intervals(&mut rng);
        let epoch_ms = rng.gen_range(1u64..500);
        let horizon = 8_000u64;
        let merged = merge_intervals(raw);
        let epochs = epochs_from_intervals(&merged, epoch_ms, horizon);
        let cfg = EpochConfig::new(epoch_ms, horizon);
        let v = ActivityVector::from_intervals(&merged, cfg);
        let from_vector: Vec<u32> = v.iter_epochs().collect();
        assert_eq!(epochs, from_vector, "case {case}: epoch_ms {epoch_ms}");
        assert!(v.active_epochs() <= v.d(), "case {case}");
    }
}

#[test]
fn histogram_ttp_matches_dense_recomputation() {
    let mut rng = SmallRng::seed_from_u64(0x1003);
    for case in 0..CASES {
        let d = 300;
        let n_sets = rng.gen_range(1usize..8);
        let sets: Vec<Vec<u32>> = (0..n_sets).map(|_| epoch_set(&mut rng, d, 60)).collect();
        let r = rng.gen_range(0u32..5);
        let vectors: Vec<ActivityVector> = sets
            .iter()
            .map(|s| ActivityVector::from_epochs(s.clone(), d))
            .collect();
        let mut hist = ActiveCountHistogram::new(d);
        for v in &vectors {
            hist.add(v);
        }
        let refs: Vec<&ActivityVector> = vectors.iter().collect();
        let dense = ActiveCountHistogram::ttp_dense(&refs, d, r);
        assert!(
            (hist.ttp(r) - dense).abs() < 1e-12,
            "case {case}: histogram {} vs dense {dense}",
            hist.ttp(r)
        );
    }
}

#[test]
fn two_step_always_yields_valid_partitions() {
    let mut rng = SmallRng::seed_from_u64(0x1004);
    for case in 0..CASES {
        let d = 120;
        let n = rng.gen_range(1usize..16);
        let sets: Vec<Vec<u32>> = (0..n).map(|_| epoch_set(&mut rng, d, 40)).collect();
        let nodes: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..16)).collect();
        let r = rng.gen_range(1u32..4);
        let p = f64::from(rng.gen_range(900u32..=1000)) / 1000.0;
        let tenants: Vec<Tenant> = (0..n)
            .map(|i| Tenant::new(TenantId(i as u32), nodes[i], 100.0 * f64::from(nodes[i])))
            .collect();
        let activities: Vec<ActivityVector> = sets
            .iter()
            .map(|s| ActivityVector::from_epochs(s.clone(), d))
            .collect();
        let problem = GroupingProblem::new(tenants, activities, r, p);
        let two_step = two_step_grouping(&problem);
        assert!(two_step.validate(&problem).is_ok(), "case {case}");
        let ffd = ffd_grouping(&problem);
        assert!(ffd.validate(&problem).is_ok(), "case {case}");
        // Node accounting is consistent.
        assert!(two_step.nodes_used(&problem) >= u64::from(r), "case {case}");
        assert!(two_step.effectiveness(&problem) <= 1.0, "case {case}");
    }
}

#[test]
fn processor_sharing_conserves_work() {
    let mut rng = SmallRng::seed_from_u64(0x1005);
    for case in 0..CASES {
        // Total wall time until the last completion equals total dedicated
        // work when the instance is never idle (single tenant, all queries
        // overlapping) — PS is work-conserving.
        let n = rng.gen_range(1usize..10);
        let works: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..60)).collect();
        let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(1));
        let tenant = SimTenantId(0);
        let inst = cluster.provision_instance(1, &[(tenant, 1.0)]).unwrap();
        let mut total_ms = 0u64;
        for &w in &works {
            let template = QueryTemplate::new(TemplateId(1), (w * 1000) as f64, 0.0);
            cluster
                .submit(inst, QuerySpec::new(template, 1.0, tenant))
                .unwrap();
            total_ms += w * 1000;
        }
        let events = cluster.run_to_quiescence();
        let last_finish = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::QueryCompleted(c) => Some(c.finished.as_ms()),
                _ => None,
            })
            .max()
            .unwrap();
        // Millisecond rounding of completion checks can add a few ticks.
        assert!(last_finish >= total_ms, "case {case}");
        assert!(
            last_finish <= total_ms + works.len() as u64 * 2,
            "case {case}: {last_finish} vs {total_ms}"
        );
    }
}

#[test]
fn shorter_queries_finish_no_later_under_ps() {
    let mut rng = SmallRng::seed_from_u64(0x1006);
    for case in 0..CASES {
        // Under processor sharing with simultaneous arrival, completion
        // order follows remaining-work order.
        let n = rng.gen_range(2usize..8);
        let works: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..40)).collect();
        let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(1));
        let tenant = SimTenantId(0);
        let inst = cluster.provision_instance(1, &[(tenant, 1.0)]).unwrap();
        let mut ids = Vec::new();
        for &w in &works {
            let template = QueryTemplate::new(TemplateId(1), (w * 1000) as f64, 0.0);
            let id = cluster
                .submit(inst, QuerySpec::new(template, 1.0, tenant))
                .unwrap();
            ids.push((id, w));
        }
        let events = cluster.run_to_quiescence();
        let mut finishes: Vec<(u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::QueryCompleted(c) => {
                    let w = ids.iter().find(|(id, _)| *id == c.query).unwrap().1;
                    Some((w, c.finished.as_ms()))
                }
                _ => None,
            })
            .collect();
        finishes.sort();
        for pair in finishes.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "case {case}: {finishes:?}");
        }
    }
}

#[test]
fn router_never_loses_queries() {
    let mut rng = SmallRng::seed_from_u64(0x1007);
    for case in 0..CASES {
        // Random interleaving of route/complete operations; the router's
        // bookkeeping must stay balanced.
        let a = rng.gen_range(1usize..5);
        let n_ops = rng.gen_range(1usize..200);
        let mut router = QueryRouter::new(a);
        let mut running: Vec<(usize, TenantId)> = Vec::new();
        for _ in 0..n_ops {
            let tenant = TenantId(rng.gen_range(0u32..6));
            let is_route = rng.gen_bool(0.5);
            if is_route || running.is_empty() {
                let route = router.route(tenant);
                assert!(route.mppdb < a, "case {case}");
                running.push((route.mppdb, tenant));
            } else {
                let (mppdb, tenant) = running.swap_remove(0);
                router.complete(mppdb, tenant).unwrap();
            }
            let distinct: std::collections::BTreeSet<u32> =
                running.iter().map(|(_, t)| t.0).collect();
            assert_eq!(router.active_tenants(), distinct.len(), "case {case}");
        }
        for (mppdb, tenant) in running.drain(..) {
            router.complete(mppdb, tenant).unwrap();
        }
        assert_eq!(router.active_tenants(), 0, "case {case}");
        for j in 0..a {
            assert!(router.is_free(j), "case {case}: mppdb {j} not free");
        }
    }
}

#[test]
fn monitor_rt_ttp_stays_in_unit_range() {
    let mut rng = SmallRng::seed_from_u64(0x1008);
    for case in 0..CASES {
        let r = rng.gen_range(0u32..4);
        let n_ops = rng.gen_range(1usize..120);
        let mut monitor = GroupActivityMonitor::new(r, 50_000, 0);
        let mut now = 0u64;
        let mut running: Vec<TenantId> = Vec::new();
        for _ in 0..n_ops {
            now += rng.gen_range(1u64..1000);
            let tenant = TenantId(rng.gen_range(0u32..5));
            // Alternate starts and finishes, keeping the books balanced.
            if running.len() < 3 || !running.contains(&tenant) {
                monitor.on_query_start(tenant, now);
                running.push(tenant);
            } else {
                let pos = running.iter().position(|x| *x == tenant).unwrap();
                running.swap_remove(pos);
                monitor.on_query_finish(tenant, now).unwrap();
            }
            let ttp = monitor.rt_ttp(now);
            assert!(
                (0.0..=1.0).contains(&ttp),
                "case {case}: ttp {ttp} at {now}"
            );
        }
    }
}
