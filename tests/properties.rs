//! Property-based tests on the core data structures and invariants,
//! spanning all three crates.

use mppdb_sim::prelude::*;
use proptest::prelude::*;
use thrifty::prelude::*;
use thrifty_workload::activity::{epochs_from_intervals, merge_intervals};

/// Arbitrary raw (possibly overlapping, unsorted) intervals.
fn raw_intervals() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..5_000, 0u64..2_000), 0..40)
        .prop_map(|v| v.into_iter().map(|(s, len)| (s, s + len)).collect())
}

proptest! {
    #[test]
    fn merged_intervals_are_sorted_disjoint_and_cover_the_same_points(raw in raw_intervals()) {
        let merged = merge_intervals(raw.clone());
        // Sorted and strictly disjoint.
        for w in merged.windows(2) {
            prop_assert!(w[0].1 < w[1].0);
        }
        for &(s, e) in &merged {
            prop_assert!(s < e);
        }
        // Point-coverage equivalence on a sample of probes.
        for probe in (0..7_100).step_by(97) {
            let in_raw = raw.iter().any(|&(s, e)| s <= probe && probe < e);
            let in_merged = merged.iter().any(|&(s, e)| s <= probe && probe < e);
            prop_assert_eq!(in_raw, in_merged, "probe {}", probe);
        }
    }

    #[test]
    fn activity_vector_agrees_with_scalar_epochization(
        raw in raw_intervals(),
        epoch_ms in 1u64..500,
    ) {
        let horizon = 8_000u64;
        let merged = merge_intervals(raw);
        let epochs = epochs_from_intervals(&merged, epoch_ms, horizon);
        let cfg = EpochConfig::new(epoch_ms, horizon);
        let v = ActivityVector::from_intervals(&merged, cfg);
        let from_vector: Vec<u32> = v.iter_epochs().collect();
        prop_assert_eq!(epochs, from_vector);
        prop_assert!(v.active_epochs() <= v.d());
    }

    #[test]
    fn histogram_ttp_matches_dense_recomputation(
        sets in prop::collection::vec(prop::collection::btree_set(0u32..300, 0..60), 1..8),
        r in 0u32..5,
    ) {
        let d = 300;
        let vectors: Vec<ActivityVector> = sets
            .iter()
            .map(|s| ActivityVector::from_epochs(s.iter().copied().collect(), d))
            .collect();
        let mut hist = ActiveCountHistogram::new(d);
        for v in &vectors {
            hist.add(v);
        }
        let refs: Vec<&ActivityVector> = vectors.iter().collect();
        let dense = ActiveCountHistogram::ttp_dense(&refs, d, r);
        prop_assert!((hist.ttp(r) - dense).abs() < 1e-12);
    }

    #[test]
    fn two_step_always_yields_valid_partitions(
        sets in prop::collection::vec(prop::collection::btree_set(0u32..120, 0..40), 1..16),
        nodes in prop::collection::vec(1u32..16, 16),
        r in 1u32..4,
        p_pct in 900u32..=1000,
    ) {
        let d = 120;
        let n = sets.len();
        let tenants: Vec<Tenant> = (0..n)
            .map(|i| Tenant::new(TenantId(i as u32), nodes[i], 100.0 * f64::from(nodes[i])))
            .collect();
        let activities: Vec<ActivityVector> = sets
            .iter()
            .map(|s| ActivityVector::from_epochs(s.iter().copied().collect(), d))
            .collect();
        let problem = GroupingProblem::new(tenants, activities, r, f64::from(p_pct) / 1000.0);
        let two_step = two_step_grouping(&problem);
        prop_assert!(two_step.validate(&problem).is_ok());
        let ffd = ffd_grouping(&problem);
        prop_assert!(ffd.validate(&problem).is_ok());
        // Node accounting is consistent.
        prop_assert!(two_step.nodes_used(&problem) >= u64::from(r));
        prop_assert!(two_step.effectiveness(&problem) <= 1.0);
    }

    #[test]
    fn processor_sharing_conserves_work(
        works in prop::collection::vec(1u64..60, 1..10),
        stagger_s in prop::collection::vec(0u64..30, 10),
    ) {
        // Total wall time until the last completion equals total dedicated
        // work when the instance is never idle (single tenant, all queries
        // overlapping) — PS is work-conserving.
        let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(1));
        let tenant = SimTenantId(0);
        let inst = cluster.provision_instance(1, &[(tenant, 1.0)]).unwrap();
        // Submit everything at t=0 (ignore stagger for the conservation
        // check; stagger is exercised in the latency-ordering check below).
        let _ = stagger_s;
        let mut total_ms = 0u64;
        for &w in &works {
            let template = QueryTemplate::new(TemplateId(1), (w * 1000) as f64, 0.0);
            cluster.submit(inst, QuerySpec::new(template, 1.0, tenant)).unwrap();
            total_ms += w * 1000;
        }
        let events = cluster.run_to_quiescence();
        let last_finish = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::QueryCompleted(c) => Some(c.finished.as_ms()),
                _ => None,
            })
            .max()
            .unwrap();
        // Millisecond rounding of completion checks can add a few ticks.
        prop_assert!(last_finish >= total_ms);
        prop_assert!(last_finish <= total_ms + works.len() as u64 * 2);
    }

    #[test]
    fn shorter_queries_finish_no_later_under_ps(
        works in prop::collection::vec(1u64..40, 2..8),
    ) {
        // Under processor sharing with simultaneous arrival, completion
        // order follows remaining-work order.
        let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(1));
        let tenant = SimTenantId(0);
        let inst = cluster.provision_instance(1, &[(tenant, 1.0)]).unwrap();
        let mut ids = Vec::new();
        for &w in &works {
            let template = QueryTemplate::new(TemplateId(1), (w * 1000) as f64, 0.0);
            let id = cluster
                .submit(inst, QuerySpec::new(template, 1.0, tenant))
                .unwrap();
            ids.push((id, w));
        }
        let events = cluster.run_to_quiescence();
        let mut finishes: Vec<(u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::QueryCompleted(c) => {
                    let w = ids.iter().find(|(id, _)| *id == c.query).unwrap().1;
                    Some((w, c.finished.as_ms()))
                }
                _ => None,
            })
            .collect();
        finishes.sort();
        for pair in finishes.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1, "{finishes:?}");
        }
    }

    #[test]
    fn router_never_loses_queries(
        ops in prop::collection::vec((0u32..6, prop::bool::ANY), 1..200),
        a in 1usize..5,
    ) {
        // Random interleaving of route/complete operations; the router's
        // bookkeeping must stay balanced.
        let mut router = QueryRouter::new(a);
        let mut running: Vec<(usize, TenantId)> = Vec::new();
        for (t, is_route) in ops {
            let tenant = TenantId(t);
            if is_route || running.is_empty() {
                let route = router.route(tenant);
                prop_assert!(route.mppdb < a);
                running.push((route.mppdb, tenant));
            } else {
                let (mppdb, tenant) = running.swap_remove(0);
                router.complete(mppdb, tenant);
            }
            let distinct: std::collections::BTreeSet<u32> =
                running.iter().map(|(_, t)| t.0).collect();
            prop_assert_eq!(router.active_tenants(), distinct.len());
        }
        for (mppdb, tenant) in running.drain(..) {
            router.complete(mppdb, tenant);
        }
        prop_assert_eq!(router.active_tenants(), 0);
        for j in 0..a {
            prop_assert!(router.is_free(j));
        }
    }

    #[test]
    fn monitor_rt_ttp_stays_in_unit_range(
        ops in prop::collection::vec((0u32..5, 1u64..1000), 1..120),
        r in 0u32..4,
    ) {
        let mut monitor = GroupActivityMonitor::new(r, 50_000, 0);
        let mut now = 0u64;
        let mut running: Vec<TenantId> = Vec::new();
        for (t, dt) in ops {
            now += dt;
            let tenant = TenantId(t);
            // Alternate starts and finishes, keeping the books balanced.
            if running.len() < 3 || !running.contains(&tenant) {
                monitor.on_query_start(tenant, now);
                running.push(tenant);
            } else {
                let pos = running.iter().position(|x| *x == tenant).unwrap();
                running.swap_remove(pos);
                monitor.on_query_finish(tenant, now);
            }
            let ttp = monitor.rt_ttp(now);
            prop_assert!((0.0..=1.0).contains(&ttp), "ttp {} at {}", ttp, now);
        }
    }
}
