//! Determinism guarantees: the whole stack — generation, grouping,
//! deployment, replay — reproduces bit-for-bit from a seed. This is what
//! makes every experiment in EXPERIMENTS.md a statement rather than a
//! sample.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

fn build_and_replay(seed: u64) -> (u64, usize, Vec<(u64, u64, bool)>) {
    let mut cfg = GenerationConfig::small(seed, 50);
    cfg.parallelism_levels = vec![2, 4];
    cfg.session_trials = 4;
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let specs = composer.tenant_specs();
    let histories: Vec<(Tenant, Vec<(u64, u64)>)> = specs
        .iter()
        .map(|s| {
            (
                Tenant::new(s.id, s.nodes, s.data_gb),
                composer.busy_intervals(s),
            )
        })
        .collect();
    let advice = DeploymentAdvisor::new(AdvisorConfig {
        replication: 2,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, cfg.horizon_ms()),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    })
    .advise(&histories);

    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 4,
        templates,
        ServiceConfig::default(),
    )
    .unwrap();
    let mut day_one: Vec<IncomingQuery> = specs
        .iter()
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < 36 * 3_600_000)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    day_one.sort_by_key(|q| (q.submit, q.tenant));
    let report = service.replay(day_one).unwrap();
    let records: Vec<(u64, u64, bool)> = report
        .records
        .iter()
        .map(|r| (r.submit.as_ms(), r.achieved.as_ms(), r.met))
        .collect();
    (advice.plan.nodes_used(), report.summary.total, records)
}

#[test]
fn the_whole_stack_is_bit_reproducible() {
    let a = build_and_replay(5);
    let b = build_and_replay(5);
    assert_eq!(a.0, b.0, "plan node counts must match");
    assert_eq!(a.1, b.1, "record counts must match");
    assert_eq!(a.2, b.2, "every record must match bit for bit");
    assert!(
        a.1 > 100,
        "the replay must be substantial ({} records)",
        a.1
    );
}

#[test]
fn different_seeds_differ() {
    let a = build_and_replay(5);
    let b = build_and_replay(6);
    assert_ne!(a.2, b.2);
}

/// Runs the bench pipeline (histories → FFD/2-step comparison) at a given
/// thread count and returns a byte-exact serialization of everything except
/// wall-clock time. Both runs happen inside one `#[test]` because the
/// thread override is process-global.
#[test]
fn parallel_pipeline_is_byte_identical_to_serial() {
    use thrifty_bench::parallel;
    use thrifty_bench::pipeline::{compare_algorithms, defaults, Harness};

    let run = |threads: usize| -> (String, String, String, String) {
        parallel::set_thread_override(Some(threads));
        let mut cfg = GenerationConfig::small(11, 80);
        cfg.parallelism_levels = vec![2, 4];
        cfg.session_trials = 4;
        let harness = Harness::from_config(cfg);
        let corpus = harness.default_histories();
        let point = compare_algorithms(
            &corpus,
            "determinism",
            defaults::EPOCH_MS,
            2,
            defaults::SLA_P,
        );
        let telemetry_report = replay_with_telemetry(&corpus, harness.library());
        parallel::set_thread_override(None);
        // `runtime` is wall clock — the one field allowed to differ.
        let strip = |report: &ConsolidationReport| {
            let mut r = report.clone();
            r.runtime = std::time::Duration::ZERO;
            serde_json::to_string(&r).unwrap()
        };
        (
            serde_json::to_string(&corpus.histories).unwrap(),
            strip(&point.ffd),
            strip(&point.two_step),
            telemetry_report,
        )
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.0, parallel.0,
        "tenant histories must be byte-identical at any thread count"
    );
    assert_eq!(serial.1, parallel.1, "FFD reports must be byte-identical");
    assert_eq!(
        serial.2, parallel.2,
        "2-step reports must be byte-identical"
    );
    assert_eq!(
        serial.3, parallel.3,
        "the telemetry-enabled service report must be byte-identical"
    );
    assert!(
        serial.0.len() > 1000,
        "the corpus must be substantial ({} bytes)",
        serial.0.len()
    );
    assert!(
        serial.3.contains("\"queries.submitted\""),
        "the serialized report must carry telemetry counters"
    );
}

/// Deploys the 2-step plan for `corpus` with telemetry fully enabled,
/// replays six hours of the composed logs, and serializes the entire
/// [`ServiceReport`] — counters, histograms, per-instance utilization, and
/// the raw event stream — so the parallel-vs-serial comparison covers the
/// telemetry subsystem byte for byte.
fn replay_with_telemetry(
    corpus: &thrifty_bench::pipeline::CorpusView,
    library: &SessionLibrary,
) -> String {
    let advice = DeploymentAdvisor::new(AdvisorConfig {
        replication: 2,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, corpus.horizon_ms),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    })
    .advise(&corpus.histories);
    let planned: std::collections::HashSet<TenantId> = advice
        .plan
        .groups
        .iter()
        .flat_map(|g| g.members.iter().map(|m| m.id))
        .collect();
    let composer = Composer::new(&corpus.cfg, library);
    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 4,
        templates,
        ServiceConfig::builder()
            .elastic_scaling(false)
            .telemetry(TelemetryConfig::default())
            .build(),
    )
    .unwrap();
    let mut log: Vec<IncomingQuery> = corpus
        .specs
        .iter()
        .filter(|s| planned.contains(&s.id))
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < 6 * 3_600_000)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    log.sort_by_key(|q| (q.submit, q.tenant));
    let report = service.replay(log).unwrap();
    assert!(report.telemetry.counter("queries.submitted") > 0);
    serde_json::to_string(&report).unwrap()
}
