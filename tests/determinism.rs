//! Determinism guarantees: the whole stack — generation, grouping,
//! deployment, replay — reproduces bit-for-bit from a seed. This is what
//! makes every experiment in EXPERIMENTS.md a statement rather than a
//! sample.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

fn build_and_replay(seed: u64) -> (u64, usize, Vec<(u64, u64, bool)>) {
    let mut cfg = GenerationConfig::small(seed, 50);
    cfg.parallelism_levels = vec![2, 4];
    cfg.session_trials = 4;
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let specs = composer.tenant_specs();
    let histories: Vec<TenantHistory> = specs
        .iter()
        .map(|s| {
            TenantHistory::new(
                Tenant::new(s.id, s.nodes, s.data_gb),
                composer.busy_intervals(s),
            )
        })
        .collect();
    let advice = DeploymentAdvisor::new(AdvisorConfig {
        replication: 2,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, cfg.horizon_ms()),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    })
    .advise(&histories);

    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 4,
        templates,
        ServiceConfig::default(),
    )
    .unwrap();
    let mut day_one: Vec<IncomingQuery> = specs
        .iter()
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < 36 * 3_600_000)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    day_one.sort_by_key(|q| (q.submit, q.tenant));
    let report = service.replay(day_one).unwrap();
    let records: Vec<(u64, u64, bool)> = report
        .records
        .iter()
        .map(|r| (r.submit.as_ms(), r.achieved.as_ms(), r.met))
        .collect();
    (advice.plan.nodes_used(), report.summary.total, records)
}

#[test]
fn the_whole_stack_is_bit_reproducible() {
    let a = build_and_replay(5);
    let b = build_and_replay(5);
    assert_eq!(a.0, b.0, "plan node counts must match");
    assert_eq!(a.1, b.1, "record counts must match");
    assert_eq!(a.2, b.2, "every record must match bit for bit");
    assert!(
        a.1 > 100,
        "the replay must be substantial ({} records)",
        a.1
    );
}

#[test]
fn different_seeds_differ() {
    let a = build_and_replay(5);
    let b = build_and_replay(6);
    assert_ne!(a.2, b.2);
}

/// The scale-out activation sweeps the in-flight query map and re-submits
/// the movers' queued queries; fresh query ids are handed out in sweep
/// order, so that order is part of the determinism contract. The map is a
/// `BTreeMap`, which makes the sweep order a function of the query ids
/// alone — two runs produce byte-identical reports even when the tenant
/// histories are supplied in a different (shuffled) insertion order. A
/// `HashMap` fails this test: every map instance draws a fresh
/// `RandomState`, so the sweep order changes from run to run.
#[test]
fn scale_out_migration_is_byte_identical_across_shuffled_runs() {
    use mppdb_sim::query::{QueryTemplate, TemplateId};
    use mppdb_sim::time::{SimDuration, SimTime};

    let run = |ratios: Vec<(TenantId, f64)>| -> String {
        let plan = DeploymentPlan {
            groups: vec![TenantGroupPlan::new(
                vec![
                    Tenant::new(TenantId(0), 2, 200.0),
                    Tenant::new(TenantId(1), 2, 200.0),
                    Tenant::new(TenantId(2), 2, 200.0),
                ],
                1,
                2,
            )],
        };
        let config = ServiceConfig::builder()
            .elastic_scaling(true)
            .scaling_check_interval_ms(10_000)
            .build()
            .expect("valid service config");
        let template = QueryTemplate::new(TemplateId(1), 600.0, 0.0);
        let mut service = ThriftyService::deploy(&plan, 16, [template], config).unwrap();
        service.set_historical_activity(ratios);
        // Tenant 0 hammers the single shared MPPDB with back-to-back
        // queries while tenants 1 and 2 submit periodically: the RT-TTP
        // collapses, tenant 0 is flagged over-active (its history says it
        // should be nearly idle), and the takeover migrates its backlog.
        let q = |tenant: u32, submit_s: u64| IncomingQuery {
            tenant: TenantId(tenant),
            submit: SimTime::from_secs(submit_s),
            template: TemplateId(1),
            baseline: SimDuration::from_ms(60_000),
        };
        let mut queries = Vec::new();
        for k in 0..400u64 {
            queries.push(q(0, k * 20));
        }
        for k in 0..25u64 {
            queries.push(q(1, 40 + k * 400));
            queries.push(q(2, 160 + k * 400));
        }
        queries.sort_by_key(|e| (e.submit, e.tenant));
        let report = service.replay(queries).unwrap();
        assert!(
            !report.scaling_events.is_empty(),
            "the scenario must trigger elastic scaling"
        );
        assert!(
            report.telemetry.counter("queries.migrated") > 0,
            "the takeover must migrate queued queries"
        );
        serde_json::to_string(&report).unwrap()
    };

    let forward = run(vec![
        (TenantId(0), 0.02),
        (TenantId(1), 0.02),
        (TenantId(2), 0.02),
    ]);
    let shuffled = run(vec![
        (TenantId(2), 0.02),
        (TenantId(0), 0.02),
        (TenantId(1), 0.02),
    ]);
    assert_eq!(
        forward, shuffled,
        "shuffled tenant-history insertion must not change a single byte"
    );
}

/// Runs the bench pipeline (histories → FFD/2-step comparison) at a given
/// thread count and returns a byte-exact serialization of everything except
/// wall-clock time. Both runs happen inside one `#[test]` because the
/// thread override is process-global.
#[test]
fn parallel_pipeline_is_byte_identical_to_serial() {
    use thrifty_bench::parallel;
    use thrifty_bench::pipeline::{compare_algorithms, defaults, Harness};

    let run = |threads: usize| -> (String, String, String, String) {
        parallel::set_thread_override(Some(threads));
        let mut cfg = GenerationConfig::small(11, 80);
        cfg.parallelism_levels = vec![2, 4];
        cfg.session_trials = 4;
        let harness = Harness::from_config(cfg);
        let corpus = harness.default_histories();
        let point = compare_algorithms(
            &corpus,
            "determinism",
            defaults::EPOCH_MS,
            2,
            defaults::SLA_P,
        );
        let telemetry_report = replay_with_telemetry(&corpus, harness.library());
        parallel::set_thread_override(None);
        // `runtime` is wall clock — the one field allowed to differ.
        let strip = |report: &ConsolidationReport| {
            let mut r = report.clone();
            r.runtime = std::time::Duration::ZERO;
            serde_json::to_string(&r).unwrap()
        };
        (
            serde_json::to_string(&corpus.histories).unwrap(),
            strip(&point.ffd),
            strip(&point.two_step),
            telemetry_report,
        )
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.0, parallel.0,
        "tenant histories must be byte-identical at any thread count"
    );
    assert_eq!(serial.1, parallel.1, "FFD reports must be byte-identical");
    assert_eq!(
        serial.2, parallel.2,
        "2-step reports must be byte-identical"
    );
    assert_eq!(
        serial.3, parallel.3,
        "the telemetry-enabled service report must be byte-identical"
    );
    assert!(
        serial.0.len() > 1000,
        "the corpus must be substantial ({} bytes)",
        serial.0.len()
    );
    assert!(
        serial.3.contains("\"queries.submitted\""),
        "the serialized report must carry telemetry counters"
    );
}

/// The drift experiment replays tenant churn and periodic re-consolidation
/// cycles — registrations, bulk loads, atomic cutovers, retirements — with
/// both arms running under `par_join2`. The entire result (trajectory
/// tables, summary, and the periodic arm's full telemetry stream) must be
/// byte-identical whether the harness runs on 1 thread or 4: cutover order,
/// decommission sweeps, and freed-node accounting are all part of the
/// determinism contract. Both runs happen inside one `#[test]` because the
/// thread override is process-global.
#[test]
fn reconsolidation_cycle_is_byte_identical_across_thread_counts() {
    use thrifty_bench::experiments::drift;
    use thrifty_bench::parallel;

    let run = |threads: usize| -> String {
        parallel::set_thread_override(Some(threads));
        let mut result = drift::drift();
        parallel::set_thread_override(None);
        // Stage timings are wall clock — the one field allowed to differ.
        result.timings.clear();
        serde_json::to_string(&result).unwrap()
    };
    let serial = run(1);
    let parallel_run = run(4);
    assert_eq!(
        serial, parallel_run,
        "a full drift-and-churn replay with re-consolidation cycles must not \
         differ by a single byte across thread counts"
    );
    assert!(
        serial.contains("\"reconsolidation.completed\""),
        "the compared run must actually execute re-consolidation cycles"
    );
    assert!(
        serial.contains("\"groups.cutover\""),
        "the compared run must exercise live cutovers"
    );
}

/// The controller experiment drives every adversarial scenario through
/// both re-consolidation arms — adaptive cadence, churn bounds, error
/// measurement, cutovers — with the arms fanned out under `par_map`. The
/// entire result (scenario tables, skip attribution, and the thrash arm's
/// telemetry stream) must be byte-identical whether the harness runs on 1
/// thread or 4. Both runs happen inside one `#[test]` because the thread
/// override is process-global.
#[test]
fn controller_experiment_is_byte_identical_across_thread_counts() {
    use thrifty_bench::experiments::controller;
    use thrifty_bench::parallel;

    let run = |threads: usize| -> String {
        parallel::set_thread_override(Some(threads));
        let mut result = controller::controller();
        parallel::set_thread_override(None);
        // Stage timings are wall clock — the one field allowed to differ.
        result.timings.clear();
        serde_json::to_string(&result).unwrap()
    };
    let serial = run(1);
    let parallel_run = run(4);
    assert_eq!(
        serial, parallel_run,
        "a full feedback-controller run over the adversarial scenario library \
         must not differ by a single byte across thread counts"
    );
    assert!(
        serial.contains("thrash"),
        "the compared run must include the planner-thrashing scenario"
    );
}

/// The session-replay loop schedules user wake-ups through a binary heap;
/// heaps are famously *not* insertion-order-independent for equal keys, so
/// the `(instant, user index)` key must totally order every entry. Pushing
/// the same wake-up set in different permutations must pop identically —
/// this is the invariant that lets `WakeupHeap` replace the old
/// full-rescan `min()` without perturbing a single session's rng stream.
#[test]
fn wakeup_heap_pops_identically_for_any_insertion_order() {
    use thrifty_workload::wakeup::WakeupHeap;

    // Deliberately includes duplicate instants across distinct users.
    let entries: Vec<(u64, usize)> = (0..200u64).map(|i| ((i * 37) % 50, i as usize)).collect();
    let drain = |order: &[usize]| -> Vec<(u64, usize)> {
        let mut heap = WakeupHeap::with_capacity(entries.len());
        for &k in order {
            let (t, u) = entries[k];
            heap.push(mppdb_sim::time::SimTime::from_ms(t), u);
        }
        let mut out = Vec::new();
        while let Some((t, u)) = heap.pop() {
            out.push((t.as_ms(), u));
        }
        out
    };
    let forward: Vec<usize> = (0..entries.len()).collect();
    // A deterministic shuffle: stride through the indices coprime to len.
    let strided: Vec<usize> = (0..entries.len())
        .map(|i| (i * 73) % entries.len())
        .collect();
    let reversed: Vec<usize> = forward.iter().rev().copied().collect();
    let a = drain(&forward);
    let b = drain(&strided);
    let c = drain(&reversed);
    assert_eq!(a, b, "strided insertion must pop identically");
    assert_eq!(a, c, "reversed insertion must pop identically");
    assert!(
        a.windows(2).all(|w| w[0] <= w[1]),
        "pops must come out in (instant, user) order"
    );
}

/// Property test: the shard-parallel 2-step grouping equals the serial
/// solver on seeded random problems, across replication factors, activity
/// densities, and thread counts. The shards are the Step-1 size buckets,
/// so equality here is what licenses `two_step_grouping_sharded` as a
/// drop-in replacement inside the advisor-scale experiments.
#[test]
fn sharded_grouping_matches_serial_on_random_problems() {
    use thrifty_bench::parallel;
    use thrifty_bench::sharded::two_step_grouping_sharded;

    // SplitMix64: the same deterministic generator the scale sweep uses.
    let mut state = 0x5EED_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    for case in 0..8u32 {
        const D: u32 = 48;
        let tenants = 20 + (case as usize) * 15;
        let sizes = [1u32, 2, 4, 8, 16];
        let mut builder = GroupingProblem::builder();
        for i in 0..tenants {
            let nodes = sizes[(next() % sizes.len() as u64) as usize];
            let density = 1 + next() % 6; // 1/12 .. 6/12 of epochs busy
            let epochs: Vec<u32> = (0..D).filter(|_| next() % 12 < density).collect();
            builder = builder.tenant(
                Tenant::new(TenantId(i as u32), nodes, 100.0 * f64::from(nodes)),
                ActivityVector::from_epochs(epochs, D),
            );
        }
        let problem = builder
            .replication(1 + case % 3)
            .sla_p(0.99)
            .build()
            .expect("random problems are consistent");
        let config = TwoStepConfig::default();
        let serial = two_step_grouping_with(&problem, config);
        parallel::set_thread_override(Some(4));
        let sharded = two_step_grouping_sharded(&problem, config);
        parallel::set_thread_override(None);
        assert_eq!(
            serial, sharded,
            "case {case}: sharded grouping must equal the serial solver"
        );
    }
}

/// The control-plane daemon is a thin shell: under a `SimClock`, a
/// request schedule driven through [`DaemonCore`] — with idle event-loop
/// ticks interleaved, which must be no-ops — produces a byte-identical
/// envelope transcript at 1 vs 4 threads, and its final `Report` answer
/// equals, byte for byte, the envelope built from the *same* operation
/// sequence performed directly on a `ThriftyService`. This is the
/// contract that lets `fault_fuzz --daemon` compare a spawned `thriftyd`
/// against direct library dispatch.
#[test]
fn sim_clock_daemon_is_byte_identical_to_direct_service_use() {
    use mppdb_sim::cost::isolated_latency_ms;
    use mppdb_sim::time::{SimDuration, SimTime};
    use thrifty::clock::SimClock;
    use thrifty_bench::parallel;
    use thrifty_daemon::config::{DaemonConfig, TenantSection};
    use thrifty_daemon::protocol::{encode_line, Envelope, Reply, Request};
    use thrifty_daemon::runtime::DaemonCore;

    let mut cfg = DaemonConfig::example();
    cfg.reconsolidation.auto = false;
    let schedule = vec![
        Request::Register(TenantSection {
            id: 50,
            nodes: 2,
            data_gb: 60.0,
        }),
        Request::Quiesce { ms: 3_600_000 },
        Request::Submit {
            tenant: 50,
            template: 2,
            data_gb: 30.0,
            nodes: 2,
        },
        Request::Submit {
            tenant: 0,
            template: 2,
            data_gb: 80.0,
            nodes: 2,
        },
        Request::Quiesce { ms: 1_800_000 },
        Request::Cycle,
        Request::Quiesce { ms: 3_600_000 },
        Request::Report,
    ];

    let daemon_run = |threads: usize| -> Vec<String> {
        parallel::set_thread_override(Some(threads));
        let mut core =
            DaemonCore::from_config(cfg.clone(), None, Box::new(SimClock::default())).unwrap();
        let mut lines = Vec::new();
        for req in &schedule {
            core.tick().unwrap();
            lines.push(encode_line(&core.handle(req)).unwrap());
            core.tick().unwrap();
        }
        parallel::set_thread_override(None);
        lines
    };
    let one = daemon_run(1);
    let four = daemon_run(4);
    assert_eq!(
        one, four,
        "the daemon transcript must be byte-identical across thread counts"
    );

    // The direct path: the identical operation sequence, straight on the
    // library, mirroring DaemonCore's dispatch exactly.
    let mut service = ThriftyService::deploy(
        &cfg.deployment_plan(),
        cfg.cluster.total_nodes,
        cfg.query_templates(),
        cfg.service_config().unwrap(),
    )
    .unwrap();
    let recon = Reconsolidator::new(cfg.advisor_config(), cfg.reconsolidation.interval_ms);
    let tpl = cfg.query_templates()[0];
    let epoch = service.log_now().as_ms();
    let mut now = 0u64;
    service
        .register_tenant(Tenant::new(TenantId(50), 2, 60.0))
        .unwrap();
    now += 3_600_000;
    service
        .run_until_quiescent_at(SimTime::from_ms(epoch + now))
        .unwrap();
    for (tenant, data_gb) in [(50u32, 30.0), (0u32, 80.0)] {
        let baseline = SimDuration::from_ms_f64(isolated_latency_ms(&tpl, data_gb, 2));
        service
            .submit(IncomingQuery {
                tenant: TenantId(tenant),
                submit: service.log_now(),
                template: tpl.id,
                baseline,
            })
            .unwrap();
    }
    now += 1_800_000;
    service
        .run_until_quiescent_at(SimTime::from_ms(epoch + now))
        .unwrap();
    if !service.reconsolidation_active() && !service.has_pending_registrations() {
        let plan = recon.plan(&service);
        if !plan.is_noop() {
            service
                .begin_reconsolidation(&plan)
                .expect("the example pool fits a cycle");
        }
    }
    now += 3_600_000;
    service
        .run_until_quiescent_at(SimTime::from_ms(epoch + now))
        .unwrap();
    let direct_envelope = Envelope::ok(Reply::Report {
        json: serde_json::to_string(&service.report()).unwrap(),
    });
    assert_eq!(
        one.last().unwrap(),
        &encode_line(&direct_envelope).unwrap(),
        "the daemon's report envelope must equal the direct service's, byte for byte"
    );
    assert!(
        one.last().unwrap().contains("queries.completed"),
        "the compared report must carry telemetry counters"
    );
}

/// Deploys the 2-step plan for `corpus` with telemetry fully enabled,
/// replays six hours of the composed logs, and serializes the entire
/// [`ServiceReport`] — counters, histograms, per-instance utilization, and
/// the raw event stream — so the parallel-vs-serial comparison covers the
/// telemetry subsystem byte for byte.
fn replay_with_telemetry(
    corpus: &thrifty_bench::pipeline::CorpusView,
    library: &SessionLibrary,
) -> String {
    let advice = DeploymentAdvisor::new(AdvisorConfig {
        replication: 2,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, corpus.horizon_ms),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    })
    .advise(&corpus.histories);
    let planned: std::collections::HashSet<TenantId> = advice
        .plan
        .groups
        .iter()
        .flat_map(|g| g.members.iter().map(|m| m.id))
        .collect();
    let composer = Composer::new(&corpus.cfg, library);
    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 4,
        templates,
        ServiceConfig::builder()
            .elastic_scaling(false)
            .telemetry(TelemetryConfig::default())
            .build()
            .expect("valid service config"),
    )
    .unwrap();
    let mut log: Vec<IncomingQuery> = corpus
        .specs
        .iter()
        .filter(|s| planned.contains(&s.id))
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < 6 * 3_600_000)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    log.sort_by_key(|q| (q.submit, q.tenant));
    let report = service.replay(log).unwrap();
    assert!(report.telemetry.counter("queries.submitted") > 0);
    serde_json::to_string(&report).unwrap()
}
