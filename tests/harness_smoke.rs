//! Smoke test: every experiment id runs end to end on a tiny corpus and
//! produces non-empty tables. Keeps the whole harness exercisable from
//! `cargo test` without waiting for the real scales.

use thrifty_bench::experiments::{self, ALL_IDS};
use thrifty_bench::pipeline::Harness;
use thrifty_workload::prelude::GenerationConfig;

#[test]
fn every_experiment_runs_on_a_tiny_corpus() {
    let mut cfg = GenerationConfig::small(47, 60);
    cfg.session_trials = 4;
    let harness = Harness::from_config(cfg);
    for id in ALL_IDS.iter().chain(["headline", "ablate"].iter()) {
        let result = experiments::run(id, &harness)
            .unwrap_or_else(|| panic!("experiment {id} is not wired into the registry"));
        assert_eq!(&result.id, id);
        assert!(
            !result.tables.is_empty(),
            "experiment {id} produced no tables"
        );
        for t in &result.tables {
            assert!(
                !t.rows.is_empty(),
                "experiment {id}: empty table {}",
                t.title
            );
        }
        // Rendering must not panic and must carry the id.
        let rendered = result.to_string();
        assert!(rendered.contains(id.trim_start_matches("fig").trim_start_matches("tab")));
    }
}

#[test]
fn unknown_ids_are_rejected() {
    let mut cfg = GenerationConfig::small(47, 20);
    cfg.session_trials = 2;
    let harness = Harness::from_config(cfg);
    assert!(experiments::run("fig9.9", &harness).is_none());
}
