//! Grouping-quality integration tests: the 2-step heuristic against FFD and
//! the exact optimum, on generated corpora.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

fn problem_from_corpus(seed: u64, tenants: usize, r: u32, p: f64) -> GroupingProblem {
    let mut cfg = GenerationConfig::small(seed, tenants);
    cfg.parallelism_levels = vec![2, 4];
    cfg.session_trials = 5;
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let epoch = EpochConfig::new(10_000, cfg.horizon_ms());
    let mut tenants_v = Vec::new();
    let mut activities = Vec::new();
    for s in composer.tenant_specs() {
        tenants_v.push(Tenant::new(s.id, s.nodes, s.data_gb));
        activities.push(ActivityVector::from_intervals(
            &composer.busy_intervals(&s),
            epoch,
        ));
    }
    GroupingProblem::new(tenants_v, activities, r, p)
}

#[test]
fn two_step_beats_published_ffd_on_realistic_corpora() {
    // The paper's headline comparison (3.6–11.1 pp more nodes saved).
    for seed in [1u64, 2, 3] {
        let problem = problem_from_corpus(seed, 150, 3, 0.999);
        let two_step = two_step_grouping(&problem);
        let ffd = ffd_grouping(&problem);
        two_step.validate(&problem).unwrap();
        ffd.validate(&problem).unwrap();
        assert!(
            two_step.nodes_used(&problem) < ffd.nodes_used(&problem),
            "seed {seed}: 2-step {} vs FFD {}",
            two_step.nodes_used(&problem),
            ffd.nodes_used(&problem)
        );
    }
}

#[test]
fn exact_solver_bounds_the_heuristics_on_small_corpora() {
    let problem = problem_from_corpus(7, 10, 2, 0.999);
    let exact = exact_grouping(&problem);
    let two_step = two_step_grouping(&problem);
    let ffd = ffd_grouping(&problem);
    exact.validate(&problem).unwrap();
    assert!(exact.nodes_used(&problem) <= two_step.nodes_used(&problem));
    assert!(exact.nodes_used(&problem) <= ffd.nodes_used(&problem));
    // On this small instance the 2-step heuristic should be close to
    // optimal (within one extra group of the smallest size).
    assert!(
        two_step.nodes_used(&problem) <= exact.nodes_used(&problem) + 2 * 2,
        "2-step {} vs exact {}",
        two_step.nodes_used(&problem),
        exact.nodes_used(&problem)
    );
}

#[test]
fn looser_sla_never_uses_more_nodes() {
    let mut last = u64::MAX;
    for p in [0.9999, 0.999, 0.99, 0.95] {
        let problem = problem_from_corpus(11, 120, 3, p);
        let solution = two_step_grouping(&problem);
        let used = solution.nodes_used(&problem);
        assert!(
            used <= last,
            "loosening P to {p} should not use more nodes ({used} > {last})"
        );
        last = used;
    }
}

#[test]
fn effectiveness_grows_with_replication_up_to_saturation() {
    // Figure 7.4a: going from R = 1 to R = 3 clearly helps (more concurrent
    // actives absorbed per group outweighs the replica cost on low-activity
    // corpora).
    let eff = |r: u32| {
        let problem = problem_from_corpus(13, 150, r, 0.999);
        two_step_grouping(&problem).effectiveness(&problem)
    };
    let (e1, e3) = (eff(1), eff(3));
    assert!(e3 > e1, "R=3 ({e3:.3}) must beat R=1 ({e1:.3})");
}

#[test]
fn deployment_plan_matches_grouping_accounting() {
    let problem = problem_from_corpus(17, 80, 2, 0.999);
    let solution = two_step_grouping(&problem);
    let plan = DeploymentPlan::from_grouping(&problem, &solution);
    assert_eq!(plan.nodes_used(), solution.nodes_used(&problem));
    assert_eq!(plan.nodes_requested(), problem.nodes_requested());
    assert_eq!(plan.tenant_count(), problem.len());
    assert_eq!(
        plan.instance_count(),
        solution.groups.len() * problem.replication as usize
    );
    // Property 1: every group plan replicates each member A = R times.
    for g in &plan.groups {
        assert_eq!(g.replication(), problem.replication);
    }
}
