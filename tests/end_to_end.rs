//! End-to-end pipeline tests: workload generation → advisor → deployment →
//! replay, across all three crates.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

fn corpus(seed: u64, tenants: usize) -> (GenerationConfig, SessionLibrary) {
    let mut cfg = GenerationConfig::small(seed, tenants);
    cfg.parallelism_levels = vec![2, 4, 8];
    cfg.session_trials = 6;
    let library = SessionLibrary::generate(&cfg);
    (cfg, library)
}

fn histories(cfg: &GenerationConfig, library: &SessionLibrary) -> Vec<TenantHistory> {
    let composer = Composer::new(cfg, library);
    composer
        .tenant_specs()
        .iter()
        .map(|s| {
            TenantHistory::new(
                Tenant::new(s.id, s.nodes, s.data_gb),
                composer.busy_intervals(s),
            )
        })
        .collect()
}

fn advisor(cfg: &GenerationConfig) -> DeploymentAdvisor {
    DeploymentAdvisor::new(AdvisorConfig {
        replication: 2,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, cfg.horizon_ms()),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    })
}

#[test]
fn full_pipeline_consolidates_and_meets_slas() {
    let (cfg, library) = corpus(3, 80);
    let histories = histories(&cfg, &library);
    let advice = advisor(&cfg).advise(&histories);
    advice.solution.validate(&advice.problem).unwrap();
    assert!(
        advice.report.effectiveness > 0.25,
        "saved only {:.1}%",
        advice.report.effectiveness * 100.0
    );

    // Replay day one of the composed logs through the deployed service.
    let composer = Composer::new(&cfg, &library);
    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 8,
        templates,
        ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config"),
    )
    .unwrap();
    let mut day_one: Vec<IncomingQuery> = composer
        .tenant_specs()
        .iter()
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < 24 * 3_600_000)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    day_one.sort_by_key(|q| (q.submit, q.tenant));
    assert!(!day_one.is_empty());
    let report = service.replay(day_one).unwrap();
    // The grouping held a 99.9% TTP on this very history, so the replayed
    // compliance must be high (small slack for epoch discretization and
    // the ±1 query-latency variation of the shared instance).
    assert!(
        report.summary.compliance() > 0.97,
        "compliance {:.4}",
        report.summary.compliance()
    );
}

#[test]
fn pipeline_is_deterministic_from_the_seed() {
    let run = || {
        let (cfg, library) = corpus(9, 40);
        let histories = histories(&cfg, &library);
        let advice = advisor(&cfg).advise(&histories);
        (
            advice.report.nodes_used,
            advice.report.groups,
            advice
                .solution
                .groups
                .iter()
                .map(|g| g.members.clone())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_corpora_but_same_regime() {
    let eff = |seed: u64| {
        let (cfg, library) = corpus(seed, 120);
        let advice = advisor(&cfg).advise(histories(&cfg, &library));
        advice.report.effectiveness
    };
    let (a, b) = (eff(1), eff(2));
    assert_ne!(a, b, "different seeds should not coincide exactly");
    assert!(
        (a - b).abs() < 0.2,
        "seeds {a:.3} vs {b:.3} diverge too much"
    );
}

#[test]
fn excluded_tenants_do_not_enter_the_plan() {
    let (cfg, library) = corpus(5, 30);
    let mut histories = histories(&cfg, &library);
    // Make one tenant always active: it must be excluded.
    histories[0].intervals = vec![(0, cfg.horizon_ms())];
    let advice = advisor(&cfg).advise(&histories);
    assert_eq!(advice.excluded.len(), 1);
    assert_eq!(advice.excluded[0].id, histories[0].tenant.id);
    assert_eq!(advice.plan.tenant_count(), 29);
}
