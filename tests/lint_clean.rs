//! Tier-1 enforcement of the determinism & robustness lint: `cargo test`
//! fails if any `crates/*/src` file violates a thrifty-lint rule (see
//! the rule table in `crates/lint/src/lib.rs` and ARCHITECTURE.md).
//!
//! Runs fully offline — the linter is a workspace crate with a hand-rolled
//! tokenizer, so this test needs nothing beyond the checked-out tree.

use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let report = thrifty_lint::lint_tree(&root).expect("lint walk must succeed");
    assert!(
        report.files_scanned > 50,
        "the walk must cover the whole workspace (saw {} files)",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "thrifty-lint found violations:\n{}",
        thrifty_lint::render_text(&report)
    );
}

#[test]
fn the_json_format_is_stable_for_ci() {
    // CI uploads `--format json` output as an artifact on failure; make
    // sure a clean run serializes and round-trips.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let report = thrifty_lint::lint_tree(&root).expect("lint walk must succeed");
    let json = thrifty_lint::render_json(&report);
    let back: thrifty_lint::LintReport = serde_json::from_str(&json).expect("round-trip");
    assert_eq!(back, report);
}
