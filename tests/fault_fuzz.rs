//! Randomized fault-injection invariant harness (tentpole of the
//! degradation-correct failure model) plus deterministic `FailurePlan`
//! edge cases: failure at a completion timestamp, failure of an already
//! failed node, and failure during provisioning.

use mppdb_sim::cluster::{Cluster, ClusterConfig, SimEvent};
use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::instance::InstanceState;
use mppdb_sim::query::{QuerySpec, QueryTemplate, SimTenantId, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use thrifty::prelude::*;
use thrifty_bench::{fuzz, parallel};

#[test]
fn fifty_seeded_schedules_hold_every_invariant() {
    let failures = fuzz::run_seed_range(0, 50);
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Service-level fuzz outcomes — including the full serialized
/// telemetry-enabled [`ServiceReport`] — must be byte-identical whether
/// the seed sweep runs on 1 thread or 4. Both runs happen inside one
/// `#[test]` because the thread override is process-global.
#[test]
fn service_fuzz_reports_are_byte_identical_across_thread_counts() {
    let seeds: Vec<u64> = (0..6).collect();
    let sweep = |threads: usize| -> Vec<String> {
        parallel::set_thread_override(Some(threads));
        let out = parallel::par_map("fuzz:thread-compare", &seeds, |&s| {
            fuzz::fuzz_service(s).expect("invariants hold").report_json
        });
        parallel::set_thread_override(None);
        out
    };
    let serial = sweep(1);
    let parallel_run = sweep(4);
    assert_eq!(serial, parallel_run, "reports must match byte for byte");
    assert!(
        serial.iter().all(|j| j.contains("\"queries.submitted\"")),
        "every report must carry telemetry counters"
    );
}

fn template() -> QueryTemplate {
    QueryTemplate::new(TemplateId(1), 100.0, 0.0)
}

fn service_with_one_group(a: u32) -> ThriftyService {
    let members: Vec<Tenant> = (0..3).map(|i| Tenant::new(TenantId(i), 2, 200.0)).collect();
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members, a, 2)],
    };
    ThriftyService::deploy(
        &plan,
        12,
        [template()],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config"),
    )
    .unwrap()
}

fn q(t: u32, at_s: u64) -> IncomingQuery {
    IncomingQuery {
        tenant: TenantId(t),
        submit: SimTime::from_secs(at_s),
        template: template().id,
        baseline: SimDuration::from_ms_f64(isolated_latency_ms(&template(), 200.0, 2)),
    }
}

/// A node failure scheduled at the exact instant a query completes must
/// neither slow the already-finished query nor disturb determinism: the
/// heap breaks the timestamp tie by insertion order, so repeated runs —
/// at any harness thread count — produce identical event streams.
#[test]
fn failure_at_a_completion_timestamp_is_deterministic() {
    let run = || -> String {
        let mut s = service_with_one_group(2);
        let inst = s.group_instances(0).unwrap()[0];
        let victim = s.cluster().instance(inst).unwrap().nodes()[0];
        // The t=0 query completes at exactly 10 s; the failure lands on
        // the same timestamp.
        s.inject_node_failure(victim, SimTime::from_secs(10))
            .unwrap();
        let report = s.replay([q(0, 0)]).unwrap();
        assert_eq!(report.records.len(), 1);
        let r = &report.records[0];
        assert_eq!(
            r.achieved.as_ms(),
            10_000,
            "a failure at the completion instant must not slow the query"
        );
        assert!(r.met);
        let completed_at = report
            .telemetry
            .events_where(|e| matches!(e, TelemetryEvent::QueryCompleted { .. }))
            .map(TelemetryEvent::at_ms)
            .next()
            .unwrap();
        let failed_at = report
            .telemetry
            .events_where(|e| matches!(e, TelemetryEvent::NodeFailed { .. }))
            .map(TelemetryEvent::at_ms)
            .next()
            .unwrap();
        assert_eq!((completed_at, failed_at), (10_000, 10_000));
        serde_json::to_string(&report).unwrap()
    };
    let replicas: Vec<u32> = (0..4).collect();
    parallel::set_thread_override(Some(1));
    let serial = parallel::par_map("edge:same-ts", &replicas, |_| run());
    parallel::set_thread_override(Some(4));
    let threaded = parallel::par_map("edge:same-ts", &replicas, |_| run());
    parallel::set_thread_override(None);
    assert_eq!(serial, threaded, "event order must not depend on threads");
    assert!(serial.windows(2).all(|w| w[0] == w[1]), "must be stable");
}

/// Failing a node that is already dead is a no-op: one `NodeFailed`
/// event, one replacement, and identical reports at 1 and 4 threads.
#[test]
fn double_failure_of_a_dead_node_is_idempotent() {
    let run = || -> String {
        let mut s = service_with_one_group(2);
        let inst = s.group_instances(0).unwrap()[0];
        let victim = s.cluster().instance(inst).unwrap().nodes()[0];
        s.inject_node_failure(victim, SimTime::from_secs(50))
            .unwrap();
        s.inject_node_failure(victim, SimTime::from_secs(60))
            .unwrap();
        let report = s.replay([q(0, 0), q(0, 2_000)]).unwrap();
        assert_eq!(report.telemetry.counter("nodes.failed"), 1);
        assert_eq!(report.telemetry.counter("nodes.replaced"), 1);
        assert_eq!(report.summary.total, 2);
        serde_json::to_string(&report).unwrap()
    };
    let replicas: Vec<u32> = (0..4).collect();
    parallel::set_thread_override(Some(1));
    let serial = parallel::par_map("edge:double-fail", &replicas, |_| run());
    parallel::set_thread_override(Some(4));
    let threaded = parallel::par_map("edge:double-fail", &replicas, |_| run());
    parallel::set_thread_override(None);
    assert_eq!(serial, threaded);
}

/// A node that dies while its instance is still provisioning is replaced
/// like any other: the instance still becomes ready and ends at full
/// parallelism, and a subsequent query sees no degradation.
#[test]
fn failure_during_provisioning_still_yields_a_healthy_instance() {
    let mut c = Cluster::new(ClusterConfig::new(6));
    let id = c.provision_instance(4, &[(SimTenantId(0), 10.0)]).unwrap();
    assert!(matches!(
        c.instance(id).unwrap().state(),
        InstanceState::Provisioning { .. }
    ));
    // Kill one of the starting nodes long before provisioning completes
    // (the Table 5.1 model needs 160 + 165·4 s of start-up alone).
    let victim = c.instance(id).unwrap().nodes()[1];
    c.inject_node_failure(victim, SimTime::from_secs(60))
        .unwrap();
    let events = c.run_to_quiescence();
    assert!(events
        .iter()
        .any(|e| matches!(e, SimEvent::NodeFailed { instance: Some(i), .. } if *i == id)));
    assert!(events
        .iter()
        .any(|e| matches!(e, SimEvent::NodeReplaced { instance, .. } if *instance == id)));
    assert_eq!(c.instance(id).unwrap().state(), InstanceState::Ready);
    assert_eq!(c.instance(id).unwrap().effective_nodes(), 4);
    // Full-parallelism latency: 600 ms/GB · 10 GB / 4 nodes = 1.5 s.
    let t = QueryTemplate::new(TemplateId(2), 600.0, 0.0);
    c.submit(id, QuerySpec::new(t, 10.0, SimTenantId(0)))
        .unwrap();
    let events = c.run_to_quiescence();
    match events.as_slice() {
        [SimEvent::QueryCompleted(comp)] => {
            assert_eq!(comp.latency, SimDuration::from_ms(1_500));
        }
        other => panic!("expected one completion, got {other:?}"),
    }
}
