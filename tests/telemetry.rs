//! Telemetry subsystem, end to end: the event stream is time-ordered and
//! per-query causal, the counters reconcile with the SLA records, and
//! injected node failures surface as `NodeFailed`/`NodeReplaced` events at
//! the exact simulated instants the cluster processed them.

use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::failure::FailurePlan;
use mppdb_sim::loading::ProvisioningModel;
use mppdb_sim::query::{QueryTemplate, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use thrifty::prelude::*;

fn template() -> QueryTemplate {
    QueryTemplate::new(TemplateId(1), 100.0, 0.0)
}

fn baseline(nodes: u32) -> SimDuration {
    SimDuration::from_ms_f64(isolated_latency_ms(
        &template(),
        100.0 * f64::from(nodes),
        nodes as usize,
    ))
}

fn q(t: u32, at_s: u64, nodes: u32) -> IncomingQuery {
    IncomingQuery {
        tenant: TenantId(t),
        submit: SimTime::from_secs(at_s),
        template: template().id,
        baseline: baseline(nodes),
    }
}

fn service(a: u32) -> ThriftyService {
    let members: Vec<Tenant> = (0..3).map(|i| Tenant::new(TenantId(i), 2, 200.0)).collect();
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members, a, 2)],
    };
    ThriftyService::deploy(
        &plan,
        12,
        [template()],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config"),
    )
    .unwrap()
}

#[test]
fn event_stream_is_time_ordered_and_per_query_causal() {
    let mut s = service(2);
    let report = s
        .replay([q(0, 0, 2), q(1, 5, 2), q(0, 100, 2), q(2, 130, 2)])
        .unwrap();
    let events = &report.telemetry.events;
    assert!(!events.is_empty());

    // Global ordering: the stream is sorted by simulated time.
    let stamps: Vec<u64> = events.iter().map(|e| e.at_ms()).collect();
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "event stream must be non-decreasing in at_ms: {stamps:?}"
    );

    // Per-query causality: Submitted -> Routed -> Completed, in that order.
    let position = |pred: &dyn Fn(&TelemetryEvent) -> bool| events.iter().position(pred);
    let submitted_ids: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::QuerySubmitted { query, .. } => Some(*query),
            _ => None,
        })
        .collect();
    assert_eq!(submitted_ids.len(), report.records.len());
    for qid in submitted_ids {
        let submitted = position(
            &|e| matches!(e, TelemetryEvent::QuerySubmitted { query, .. } if *query == qid),
        );
        let routed =
            position(&|e| matches!(e, TelemetryEvent::QueryRouted { query, .. } if *query == qid));
        let completed = position(
            &|e| matches!(e, TelemetryEvent::QueryCompleted { query, .. } if *query == qid),
        );
        let (s_i, r_i, c_i) = (
            submitted.expect("a submit event per query"),
            routed.expect("a route event per query"),
            completed.expect("a completion event per query"),
        );
        assert!(s_i < r_i && r_i < c_i, "causal order for {qid:?}");
    }

    // Route kinds in the events agree with the SLA records.
    let overflow_events = report
        .telemetry
        .events_where(|e| {
            matches!(
                e,
                TelemetryEvent::QueryRouted {
                    kind: RouteKind::Overflow,
                    ..
                }
            )
        })
        .count();
    let overflow_records = report
        .records
        .iter()
        .filter(|r| r.route == RouteKind::Overflow)
        .count();
    assert_eq!(overflow_events, overflow_records);
}

#[test]
fn counters_reconcile_with_the_records() {
    let mut s = service(2);
    let queries: Vec<IncomingQuery> = (0..12u64).map(|k| q((k % 3) as u32, k * 50, 2)).collect();
    let report = s.replay(queries).unwrap();
    let snap = &report.telemetry;

    let submitted = snap.counter("queries.submitted");
    let completed = snap.counter("queries.completed");
    let cancelled = snap.counter("queries.cancelled");
    assert_eq!(submitted, 12);
    assert_eq!(
        submitted,
        completed + cancelled,
        "every submitted query must either complete or be cancelled"
    );
    assert_eq!(completed as usize, report.records.len());
    assert_eq!(
        snap.counter("sla.met") + snap.counter("sla.violated"),
        completed
    );
    let routes = snap.counter("route.sticky")
        + snap.counter("route.tuning_free")
        + snap.counter("route.other_free")
        + snap.counter("route.overflow");
    assert_eq!(
        routes, submitted,
        "every submission takes exactly one route"
    );
    let latency = &snap.histograms["query.latency_ms"];
    assert_eq!(latency.count, completed);
    assert!(latency.p50 >= latency.min && latency.p99 <= latency.max.next_power_of_two());
}

#[test]
fn failure_plan_failures_surface_with_exact_sim_timestamps() {
    let mut s = service(2);
    let victim = s
        .cluster()
        .instance(s.group_instances(0).unwrap()[0])
        .unwrap()
        .nodes()[0];
    let plan = FailurePlan::none().fail_at(victim, SimTime::from_secs(50));
    s.apply_failure_plan(&plan).unwrap();

    // Replay well past the failure and the replacement start-up so both
    // events are processed.
    let report = s.replay([q(0, 0, 2), q(0, 60, 2), q(0, 2_000, 2)]).unwrap();
    let snap = &report.telemetry;

    assert_eq!(snap.counter("nodes.failed"), 1);
    assert_eq!(snap.counter("nodes.replaced"), 1);

    let failed: Vec<&TelemetryEvent> = snap
        .events_where(|e| matches!(e, TelemetryEvent::NodeFailed { .. }))
        .collect();
    assert_eq!(failed.len(), 1);
    let TelemetryEvent::NodeFailed { at_ms, node, .. } = failed[0] else {
        unreachable!()
    };
    assert_eq!(*at_ms, 50_000, "failure lands at its scheduled log instant");
    assert_eq!(*node, victim);

    // The replacement joins exactly one single-node start-up later
    // (Table 5.1 model): no randomness, no wall clock.
    let startup_ms = ProvisioningModel::paper_calibrated()
        .startup_time(1)
        .as_ms();
    let replaced: Vec<&TelemetryEvent> = snap
        .events_where(|e| matches!(e, TelemetryEvent::NodeReplaced { .. }))
        .collect();
    assert_eq!(replaced.len(), 1);
    let TelemetryEvent::NodeReplaced { at_ms, .. } = replaced[0] else {
        unreachable!()
    };
    assert_eq!(*at_ms, 50_000 + startup_ms);
}

#[test]
fn per_instance_utilization_accounts_for_the_replayed_work() {
    let mut s = service(2);
    let report = s.replay([q(0, 0, 2), q(1, 0, 2), q(0, 100, 2)]).unwrap();
    let snap = &report.telemetry;
    assert_eq!(snap.instances.len(), 2);
    let submitted: u64 = snap.instances.iter().map(|i| i.submitted).sum();
    let completed: u64 = snap.instances.iter().map(|i| i.completed).sum();
    assert_eq!(submitted, 3);
    assert_eq!(completed, 3);
    let busy: u64 = snap.instances.iter().map(|i| i.busy_ms).sum();
    // Each 2-node query runs 10 s dedicated; three of them with one overlap
    // still accumulate >= 20 s of busy time across the fleet.
    assert!(busy >= 20_000, "busy {busy} ms");
    for i in &snap.instances {
        assert!(i.utilization >= 0.0 && i.utilization <= 1.0);
        assert!(i.mean_slowdown >= 1.0 - 1e-9);
    }
}
