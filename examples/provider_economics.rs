//! Provider economics: what does consolidation earn?
//!
//! ```text
//! cargo run --release --example provider_economics
//! ```
//!
//! Runs the full pipeline on a small corpus, replays two days of queries,
//! meters every tenant's active usage under the Chapter 3 pricing model
//! (requested nodes + active time), and prints the provider's side: revenue,
//! the cost of the consolidated cluster, and what dedicated clusters would
//! have cost.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

fn main() {
    let mut cfg = GenerationConfig::small(19, 40);
    cfg.parallelism_levels = vec![2, 4];
    cfg.session_trials = 6;
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let specs = composer.tenant_specs();
    let histories: Vec<TenantHistory> = specs
        .iter()
        .map(|s| {
            TenantHistory::new(
                Tenant::new(s.id, s.nodes, s.data_gb),
                composer.busy_intervals(s),
            )
        })
        .collect();

    let advice = DeploymentAdvisor::new(AdvisorConfig {
        replication: 2,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, cfg.horizon_ms()),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    })
    .advise(&histories);
    println!("{}", advice.report);

    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 4,
        templates,
        ServiceConfig::default(),
    )
    .expect("plan fits");

    const BILLING_DAYS: f64 = 2.0;
    let mut queries: Vec<IncomingQuery> = specs
        .iter()
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < (BILLING_DAYS * 86_400_000.0) as u64)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    queries.sort_by_key(|q| (q.submit, q.tenant));
    let report = service.replay(queries).expect("replay succeeds");
    println!(
        "replayed {} queries over {BILLING_DAYS} days at {:.2}% SLA compliance\n",
        report.summary.total,
        report.summary.compliance() * 100.0
    );

    // Invoice every tenant.
    let tariff = Tariff::default();
    let mut invoices = Vec::new();
    println!(
        "{:>7}  {:>5}  {:>11}  {:>8}  {:>12}  {:>8}  {:>9}",
        "tenant", "nodes", "active", "queries", "subscription", "usage", "total"
    );
    for tenant in histories.iter().map(|h| &h.tenant).take(8) {
        let inv = service
            .invoice(tenant.id, &tariff, BILLING_DAYS)
            .expect("deployed tenant");
        println!(
            "{:>7}  {:>5}  {:>9.1}min  {:>8}  {:>12.1}  {:>8.2}  {:>9.1}",
            tenant.id.to_string(),
            inv.requested_nodes,
            inv.active_ms as f64 / 60_000.0,
            inv.queries,
            inv.subscription,
            inv.usage,
            inv.total()
        );
        invoices.push(inv);
    }
    for tenant in histories.iter().map(|h| &h.tenant).skip(8) {
        invoices.push(
            service
                .invoice(tenant.id, &tariff, BILLING_DAYS)
                .expect("deployed tenant"),
        );
    }
    println!("  ... ({} tenants total)\n", invoices.len());

    let econ = ProviderEconomics::compute(
        &invoices,
        advice.plan.nodes_used(),
        advice.plan.nodes_requested(),
        /* node_day_cost */ 4.0,
        BILLING_DAYS,
    );
    println!("revenue:                    {:>10.1} credits", econ.revenue);
    println!(
        "consolidated cluster cost:  {:>10.1} credits",
        econ.consolidated_cost
    );
    println!(
        "dedicated clusters cost:    {:>10.1} credits",
        econ.dedicated_cost
    );
    println!(
        "consolidation gain:         {:>10.1} credits ({:.1}% of dedicated cost)",
        econ.consolidation_gain(),
        100.0 * econ.consolidation_gain() / econ.dedicated_cost
    );
}
