//! Quickstart: consolidate a small MPPDBaaS tenant population end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a §7.1-style tenant corpus, asks the Deployment Advisor for a
//! plan (2-step grouping, R = 2, P = 99.9%), deploys it on the simulated
//! cluster, and replays the first day of tenant queries through the full
//! service loop — routing, SLA accounting, monitoring.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

fn main() {
    // 1. Generate a tenant corpus (Step 1 + Step 2 of §7.1, reduced scale).
    let mut cfg = GenerationConfig::small(/* seed */ 7, /* tenants */ 60);
    cfg.parallelism_levels = vec![2, 4, 8];
    cfg.session_trials = 8;
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let specs = composer.tenant_specs();
    println!(
        "generated {} tenants over a {}-day horizon",
        specs.len(),
        cfg.horizon_days
    );

    // 2. Ask the Deployment Advisor for a plan.
    let histories: Vec<TenantHistory> = specs
        .iter()
        .map(|s| {
            TenantHistory::new(
                Tenant::new(s.id, s.nodes, s.data_gb),
                composer.busy_intervals(s),
            )
        })
        .collect();
    let advisor = DeploymentAdvisor::new(AdvisorConfig {
        replication: 2,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, cfg.horizon_ms()),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    });
    let advice = advisor.advise(&histories);
    println!("{}", advice.report);
    println!(
        "deployment plan: {} tenant-groups, {} MPPDB instances, {} of {} requested nodes",
        advice.plan.groups.len(),
        advice.plan.instance_count(),
        advice.plan.nodes_used(),
        advice.plan.nodes_requested(),
    );

    // 3. Deploy on the simulated cluster and replay day one.
    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 8, // headroom for elastic scaling
        templates,
        ServiceConfig::default(),
    )
    .expect("plan fits the cluster");

    let day_one: Vec<IncomingQuery> = specs
        .iter()
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < 24 * 3_600_000)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    let mut day_one = day_one;
    day_one.sort_by_key(|q| (q.submit, q.tenant));
    println!("replaying {} queries from day one ...", day_one.len());
    let report = service.replay(day_one).expect("replay succeeds");

    println!(
        "SLA compliance: {:.3}% of {} queries (worst normalized latency {:.2}x)",
        report.summary.compliance() * 100.0,
        report.summary.total,
        report.summary.worst_normalized,
    );
    println!("elastic scaling events: {}", report.scaling_events.len());
}
