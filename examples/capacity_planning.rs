//! Capacity planning: how many nodes does a provider actually need?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! A service provider expects ~300 tenants and wants to know how the
//! replication factor `R` (availability) and SLA guarantee `P` trade off
//! against the cluster size. This sweeps both knobs over one generated
//! corpus and prints the provider's sizing table, including whether each
//! plan fits a fixed 600-node budget.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

const NODE_BUDGET: u64 = 600;

fn main() {
    let cfg = GenerationConfig::small(11, 300);
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let histories: Vec<TenantHistory> = composer
        .tenant_specs()
        .iter()
        .map(|s| {
            TenantHistory::new(
                Tenant::new(s.id, s.nodes, s.data_gb),
                composer.busy_intervals(s),
            )
        })
        .collect();
    let requested: u64 = histories.iter().map(|h| u64::from(h.tenant.nodes)).sum();
    println!(
        "{} tenants requesting {} nodes in total; node budget {}\n",
        histories.len(),
        requested,
        NODE_BUDGET
    );
    println!(
        "{:>3}  {:>7}  {:>11}  {:>11}  {:>8}  {:>10}",
        "R", "P", "nodes used", "saved", "groups", "fits?"
    );
    for r in 1..=4u32 {
        for p in [0.99, 0.999, 0.9999] {
            let advisor = DeploymentAdvisor::new(AdvisorConfig {
                replication: r,
                sla_p: p,
                epoch: EpochConfig::new(10_000, cfg.horizon_ms()),
                algorithm: GroupingAlgorithm::TwoStep,
                exclusion: ExclusionPolicy::default(),
            });
            let advice = advisor.advise(&histories);
            println!(
                "{:>3}  {:>6}%  {:>11}  {:>10.1}%  {:>8}  {:>10}",
                r,
                p * 100.0,
                advice.plan.nodes_used(),
                advice.report.effectiveness * 100.0,
                advice.plan.groups.len(),
                if advice.plan.nodes_used() <= NODE_BUDGET {
                    "yes"
                } else {
                    "NO"
                },
            );
        }
    }
    println!(
        "\nReading: every plan guarantees each tenant its dedicated-MPPDB latency for P% of \
         the time, with R replicas of every tenant's data for high availability."
    );
}
