//! The TDD query-routing walk-through of Figure 4.2 (Chapter 4.3), live.
//!
//! ```text
//! cargo run --example routing_walkthrough
//! ```
//!
//! Three MPPDBs serve one tenant-group. Queries Q1..Q8 arrive exactly as in
//! the paper's example; the router applies Algorithm 1 and the printout
//! matches the figure's narration.

use thrifty::prelude::*;

fn main() -> ThriftyResult<()> {
    let mut router = QueryRouter::new(3);
    let (t1, t2, t4, t9) = (TenantId(1), TenantId(2), TenantId(4), TenantId(9));

    let step = |label: &str, route: Route| {
        println!("{label:<4} -> MPPDB{} ({:?})", route.mppdb, route.kind);
    };

    step("Q1", router.route(t4)); // all free -> MPPDB0
    step("Q2", router.route(t2)); // MPPDB0 busy -> a free one
    step("Q3", router.route(t4)); // T4 still active -> sticky
    step("Q4", router.route(t2)); // T2 still active -> sticky
    step("Q5", router.route(t9)); // last free MPPDB
    println!(
        "     ({} tenants concurrently active)",
        router.active_tenants()
    );

    // T4 finishes Q1 and Q3; MPPDB0 frees up.
    router.complete(0, t4)?;
    router.complete(0, t4)?;
    step("Q6", router.route(t1)); // MPPDB0 free again

    // T2 finishes; then T4 returns — no longer sticky, lands on a free MPPDB.
    router.complete(1, t2)?;
    router.complete(1, t2)?;
    step("Q7", router.route(t4));

    // T1's Q6 finishes; Q8 arrives right after the "short think-time":
    // T1 counts as inactive, so Q8 is routed fresh (here: MPPDB0 again).
    router.complete(0, t1)?;
    step("Q8", router.route(t1));

    // And the overflow case the figure does not show: a fourth tenant
    // while everything is busy is concurrently processed on MPPDB0.
    let overflow = router.route(TenantId(7));
    println!(
        "Q9   -> MPPDB{} ({:?})  <- rule 4: the SLA-risky path Chapter 6 tunes U for",
        overflow.mppdb, overflow.kind
    );
    Ok(())
}
