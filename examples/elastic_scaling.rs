//! Elastic scaling in action: an over-active tenant gets its own MPPDB.
//!
//! ```text
//! cargo run --release --example elastic_scaling
//! ```
//!
//! Builds one tenant-group of six 4-node tenants with staggered office
//! hours, then has tenant T0 "go rogue" — submitting queries around the
//! clock, far beyond its history. The Tenant Activity Monitor watches the
//! group's RT-TTP; when it sinks below P = 99.9%, Thrifty identifies T0 as
//! over-active (it deviates from history; the others are merely collateral)
//! and bulk loads only T0's 400 GB onto a fresh MPPDB.

use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::query::QueryTemplate;
use mppdb_sim::time::{SimDuration, SimTime};
use thrifty::prelude::*;

fn main() {
    // One tenant-group: six 4-node tenants, A = R = 2.
    let members: Vec<Tenant> = (0..6).map(|i| Tenant::new(TenantId(i), 4, 400.0)).collect();
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members.clone(), 2, 4)],
    };
    let template = QueryTemplate::new(mppdb_sim::query::TemplateId(1), 60.0, 0.0);
    let baseline_ms = isolated_latency_ms(&template, 400.0, 4);
    let baseline = SimDuration::from_ms_f64(baseline_ms);

    let mut service = ThriftyService::deploy(
        &plan,
        16,
        [template],
        ServiceConfig::builder()
            .scaling_check_interval_ms(60_000)
            .build()
            .expect("valid service config"),
    )
    .expect("plan fits");
    // Historical activity: T0 was a quiet 5%-active tenant; the others run
    // their burst schedule (~8.5% active) as they always have.
    service.set_historical_activity(
        members
            .iter()
            .map(|m| (m.id, if m.id == TenantId(0) { 0.05 } else { 0.085 })),
    );
    println!(
        "deployed: 1 tenant-group, 2 replicas x 4 nodes; deployment took {}",
        service.log_epoch()
    );

    // Two days of traffic. Tenants 1..6 each run a 20-minute query burst
    // every four hours (staying near their 5% history, with neighbouring
    // tenants' bursts overlapping by ten minutes); tenant 0 hammers
    // continuously from hour 8.
    let mut queries: Vec<IncomingQuery> = Vec::new();
    let horizon_h = 48u64;
    for t in 1..6u32 {
        let mut burst_start = u64::from(t) * 600_000; // 10-minute stagger
        while burst_start < horizon_h * 3_600_000 {
            for k in 0..100u64 {
                queries.push(IncomingQuery {
                    tenant: TenantId(t),
                    submit: SimTime::from_ms(burst_start + k * 12_000),
                    template: template.id,
                    baseline,
                });
            }
            burst_start += 4 * 3_600_000;
        }
    }
    let hammer_start = 8 * 3_600_000u64;
    let mut at = hammer_start;
    while at < horizon_h * 3_600_000 {
        queries.push(IncomingQuery {
            tenant: TenantId(0),
            submit: SimTime::from_ms(at),
            template: template.id,
            baseline,
        });
        at += (baseline_ms * 1.2) as u64; // near-continuous
    }
    queries.sort_by_key(|q| (q.submit, q.tenant));

    println!(
        "replaying {} queries over {horizon_h} h; tenant T0 goes rogue at hour 8",
        queries.len()
    );
    let report = service.replay(queries).expect("replay succeeds");

    for ev in &report.scaling_events {
        println!(
            "elastic scaling: detected at {}, moved {:?}, new MPPDB ready at {:?}",
            ev.triggered_at, ev.over_active, ev.ready_at,
        );
    }
    println!(
        "T0 now served by group {:?}; the original group keeps groups {:?}..{:?}",
        service.group_of(TenantId(0)),
        service.group_of(TenantId(1)),
        service.group_of(TenantId(5)),
    );
    println!(
        "SLA compliance: {:.2}% of {} queries",
        report.summary.compliance() * 100.0,
        report.summary.total
    );
}
