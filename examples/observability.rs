//! Observability: what the telemetry subsystem sees during a replay.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! Deploys one tenant-group, schedules a node failure mid-replay via a
//! [`FailurePlan`], drives a morning of query traffic through the service,
//! and prints the resulting [`TelemetrySnapshot`]: counters, per-instance
//! utilization, latency quantiles, and a slice of the raw event stream.
//! Everything below derives from *simulated* time — run it twice and the
//! output is byte-identical.
//!
//! The `main` signature also demonstrates the service error types: both
//! `ThriftyError` and `SimError` implement `std::error::Error`, so `?`
//! works against `Box<dyn Error>`.

use mppdb_sim::cost::isolated_latency_ms;
use mppdb_sim::failure::FailurePlan;
use mppdb_sim::query::{QueryTemplate, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use std::error::Error;
use thrifty::prelude::*;
use thrifty_bench::report::{telemetry_counters_table, telemetry_instances_table};

fn main() -> Result<(), Box<dyn Error>> {
    // One tenant-group: four 2-node tenants sharing A = 2 replicas.
    let members: Vec<Tenant> = (0..4).map(|i| Tenant::new(TenantId(i), 2, 200.0)).collect();
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members, 2, 2)],
    };
    let template = QueryTemplate::new(TemplateId(1), 100.0, 0.0);
    let baseline = SimDuration::from_ms_f64(isolated_latency_ms(&template, 200.0, 2));

    let mut service = ThriftyService::deploy(
        &plan,
        12,
        [template],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .telemetry(TelemetryConfig::default())
            .build()
            .expect("valid service config"),
    )?;

    // Fail one node of the first MPPDB 50 s into the log; a spare exists,
    // so the cluster degrades and transparently recovers.
    let victim = service
        .cluster()
        .instance(service.group_instances(0).expect("group 0 exists")[0])
        .expect("instance exists")
        .nodes()[0];
    service.apply_failure_plan(&FailurePlan::none().fail_at(victim, SimTime::from_secs(50)))?;

    // A morning of traffic: each tenant submits a query every few minutes,
    // staggered so the group routinely has 2–3 concurrently active tenants.
    let mut queries = Vec::new();
    for t in 0..4u32 {
        let mut at = u64::from(t) * 7_000;
        while at < 6 * 3_600_000 {
            queries.push(IncomingQuery {
                tenant: TenantId(t),
                submit: SimTime::from_ms(at),
                template: template.id,
                baseline,
            });
            at += 180_000 + u64::from(t) * 17_000;
        }
    }
    queries.sort_by_key(|q| (q.submit, q.tenant));

    println!(
        "replaying {} queries over 6 h (node failure at 50 s)\n",
        queries.len()
    );
    let report = service.replay(queries)?;
    let snap = &report.telemetry;

    println!("{}", telemetry_counters_table(snap));
    println!("{}", telemetry_instances_table(snap));

    if let Some(h) = snap.histograms.get("query.latency_ms") {
        println!(
            "query latency: mean {:.0} ms, p50 {} ms, p95 {} ms, p99 {} ms (n={})",
            h.mean, h.p50, h.p95, h.p99, h.count
        );
    }

    println!("\nfirst 8 events of {} recorded:", snap.events.len());
    for ev in snap.events.iter().take(8) {
        println!("  {ev:?}");
    }
    println!("\nnode-failure events:");
    for ev in snap.events_where(|e| {
        matches!(
            e,
            TelemetryEvent::NodeFailed { .. } | TelemetryEvent::NodeReplaced { .. }
        )
    }) {
        println!("  {ev:?}");
    }

    println!(
        "\nSLA compliance {:.2}% over {} queries; dropped events: {}",
        report.summary.compliance() * 100.0,
        report.summary.total,
        snap.dropped_events
    );
    Ok(())
}
