//! Offline shim for `criterion`: a minimal benchmark harness with the
//! Criterion 0.5 call surface this workspace's benches use.
//!
//! No statistics, plots, or warm-up heuristics — each benchmark runs a
//! fixed number of timed iterations and prints the per-iteration minimum,
//! median, and mean. That is enough for the relative before/after
//! comparisons the `crates/bench` benches exist for; absolute numbers are
//! recorded by the experiment harness itself, not by Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default timed iterations per benchmark (Criterion's `sample_size`
/// controls a statistical sample; here it directly bounds iterations).
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Benchmark identifier: a function name plus an optional parameter, shown
/// as `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` input per iteration; only the
    /// routine is timed.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{id:<50} min {min:>12.2?}  median {median:>12.2?}  mean {mean:>12.2?}  ({} iters)",
        samples.len()
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        };
        f(&mut b);
        report(&id.id, &mut b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("# group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &mut b.samples);
        self
    }

    /// Runs one benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &mut b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= DEFAULT_SAMPLE_SIZE);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &5usize, |b, &x| {
            b.iter(|| {
                ran += x;
            })
        });
        group.finish();
        assert_eq!(ran, 15);
    }
}
