//! Offline drop-in shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces its handful of registry dependencies with local shims (see
//! `shims/README.md`). This crate keeps the *API surface* of `rand` 0.8 —
//! [`Rng`], [`SeedableRng`], [`rngs::SmallRng`],
//! [`distributions::Standard`] — but the generator itself is xoshiro256++
//! seeded through SplitMix64 rather than rand's `SmallRng`, so streams are
//! deterministic per seed but not bit-compatible with upstream `rand`.
//! Every consumer in this workspace derives all randomness from explicit
//! seeds, which is what makes the swap safe: determinism is preserved, only
//! the concrete stream values differ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generation, as in `rand_core`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator construction, as in `rand_core`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: advances `state` and returns the next output word.
/// Used to expand a 64-bit seed into a full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }

    /// Converts `self` into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a single uniform sample (`rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw from `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias is
/// ≤ 2⁻⁶⁴ · span, irrelevant for workload generation).
fn uniform_u64(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u: f64 = {
                    use distributions::Distribution;
                    distributions::Standard.sample(rng)
                };
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ 1.0 by Blackman
    /// and Vigna). Fills the role of `rand::rngs::SmallRng`: not
    /// cryptographic, excellent statistical quality, cheap to seed per
    /// stream.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;
    use std::marker::PhantomData;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution: full-width for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Iterator over samples of a distribution (`Rng::sample_iter`).
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: PhantomData<T>,
    }

    impl<D, R, T> DistIter<D, R, T> {
        pub(crate) fn new(distr: D, rng: R) -> Self {
            DistIter {
                distr,
                rng,
                _marker: PhantomData,
            }
        }
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let z = r.gen_range(0usize..4);
            assert!(z < 4);
        }
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
