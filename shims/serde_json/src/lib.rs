//! Offline shim for `serde_json`: renders and parses the [`serde::Value`]
//! tree of the workspace's minimal serde replacement as real JSON.
//!
//! Provides the call surface this workspace uses (`to_writer`,
//! `from_reader`, `to_string`, `to_string_pretty`, `from_str`,
//! [`Error`]). Numbers round-trip exactly: `u64`/`i64` are written in full
//! precision and floats use Rust's shortest-representation formatting,
//! which `str::parse::<f64>` inverts losslessly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON encoding/decoding error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value to its interchange tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes `value` as compact JSON into an [`std::io::Write`].
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serializes `value` as pretty JSON into an [`std::io::Write`].
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from an [`std::io::Read`] producing JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::msg(format!("{x} has no JSON representation")));
            }
            // `{:?}` is Rust's shortest round-trip float formatting; its
            // output (including scientific notation) is valid JSON.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !pairs.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|e| Error::msg(e.to_string()))?;
        let x = u32::from_str_radix(s, 16)
            .map_err(|_| Error::msg(format!("invalid \\u escape `{s}`")))?;
        self.pos = end;
        Ok(x)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        let v = Value::Array(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(0.1),
            Value::Float(1e-7),
            Value::Str("a \"b\"\n\\ ü €".to_string()),
        ]);
        let mut text = String::new();
        write_value(&mut text, &v, None, 0).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::UInt(2), Value::UInt(3)]),
            ),
            ("empty".to_string(), Value::Object(vec![])),
        ]);
        let mut text = String::new();
        write_value(&mut text, &v, Some(2), 0).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let x: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1e300)];
        let s = to_string(&x).unwrap();
        let y: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn unicode_escapes_parse() {
        let got: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(got, "é😀");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<u64>("-3").is_err());
    }
}
