//! Offline shim for `serde`: a minimal value-tree serialization framework.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! replaces `serde`/`serde_json` with these local shims (see
//! `shims/README.md`). The design is deliberately much smaller than real
//! serde: [`Serialize`] lowers a value into a JSON-like [`Value`] tree and
//! [`Deserialize`] lifts it back. `#[derive(Serialize, Deserialize)]`
//! (re-exported from the `serde_derive` shim) generates those impls for the
//! plain structs and enums this workspace defines; `serde_json` (also a
//! shim) renders and parses the tree as real JSON.
//!
//! What is intentionally preserved from real serde:
//!
//! * the import surface (`use serde::{Serialize, Deserialize};`),
//! * the externally-tagged enum representation
//!   (`"Variant"` / `{"Variant": ...}`),
//! * JSON round-trip fidelity for every type the workspace persists,
//!   including exact `f64` round-trips via shortest-representation
//!   formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

/// A JSON-like value tree: the interchange format between [`Serialize`],
/// [`Deserialize`], and the `serde_json` shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (stored as `i64`).
    Int(i64),
    /// Non-negative integers (stored as `u64`).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects. Insertion-ordered (a `Vec`, not a map) so serialized output
    /// is deterministic and mirrors field declaration order.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error: a plain message, matching the
/// fidelity this workspace needs from error reporting.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field (derive-generated code calls this).
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}` in {self:?}")))
    }

    /// Builds the externally-tagged enum representation
    /// `{"Variant": inner}`.
    pub fn tagged(tag: &str, inner: Value) -> Value {
        Value::Object(vec![(tag.to_string(), inner)])
    }

    /// Splits an externally-tagged enum value into `(tag, inner)`.
    pub fn tagged_parts(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
            other => Err(Error::msg(format!(
                "expected single-key variant object, found {other:?}"
            ))),
        }
    }

    /// Interprets the value as an array of exactly `n` elements.
    pub fn array_of_len(&self, n: usize) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) if items.len() == n => Ok(items),
            other => Err(Error::msg(format!(
                "expected array of {n} elements, found {other:?}"
            ))),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Lowers a value into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Lifts a value back out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, v: &Value) -> Result<T, Error> {
    Err(Error::msg(format!(
        "expected {expected}, found {} ({v:?})",
        v.type_name()
    )))
}

// --- integers --------------------------------------------------------------

fn value_as_u64(v: &Value) -> Result<u64, Error> {
    match v {
        Value::UInt(x) => Ok(*x),
        Value::Int(x) if *x >= 0 => Ok(*x as u64),
        other => type_err("unsigned integer", other),
    }
}

fn value_as_i64(v: &Value) -> Result<i64, Error> {
    match v {
        Value::Int(x) => Ok(*x),
        Value::UInt(x) => {
            i64::try_from(*x).map_err(|_| Error::msg(format!("integer {x} overflows i64")))
        }
        other => type_err("integer", other),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = value_as_u64(v)?;
                <$t>::try_from(x)
                    .map_err(|_| Error::msg(format!(
                        "integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = value_as_i64(v)?;
                <$t>::try_from(x)
                    .map_err(|_| Error::msg(format!(
                        "integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

// --- floats, bool, strings -------------------------------------------------

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(x) => Ok(*x as f64),
            Value::Int(x) => Ok(*x as f64),
            other => type_err("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            other => type_err("single-character string", other),
        }
    }
}

// --- generic forwarding impls ---------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys (HashMap iteration order is not
        // stable across runs).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize, S: Default + std::hash::BuildHasher> Deserialize for HashMap<String, V, S>
where
    String: Eq + Hash,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

macro_rules! impl_tuple {
    ($n:literal: $($t:ident . $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.array_of_len($n)?;
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    };
}

impl_tuple!(1: A.0);
impl_tuple!(2: A.0, B.1);
impl_tuple!(3: A.0, B.1, C.2);
impl_tuple!(4: A.0, B.1, C.2, D.3);

// --- std::time::Duration ---------------------------------------------------

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Mirrors real serde's representation of Duration.
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = value_as_u64(v.field("secs")?)?;
        let nanos = u32::try_from(value_as_u64(v.field("nanos")?)?)
            .map_err(|_| Error::msg("nanos out of range"))?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for x in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [i64::MIN, -1, 0, i64::MAX] {
            assert_eq!(i64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [0.0f64, -1.5, 1e300, 0.1] {
            assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
        }
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "héllo".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2u64), (3, 4)];
        let got: Vec<(u64, u64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(got, v);

        let o: Option<u32> = None;
        assert_eq!(o.to_value(), Value::Null);
        let got: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(got, None);

        let d = Duration::new(3, 250_000_000);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
