//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! against the workspace's minimal value-tree serde replacement
//! (`shims/serde`).
//!
//! The macros are implemented directly on `proc_macro` token streams — no
//! `syn`/`quote`, because the build environment cannot reach a registry.
//! Supported input shapes are exactly what this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit, tuple, and named-field variants (externally tagged,
//!   like upstream serde's default representation),
//! * no generic parameters and no `#[serde(...)]` attributes.
//!
//! Unsupported shapes fail the build with a clear `compile_error!`, so a
//! future type that outgrows the shim is caught at compile time rather than
//! silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// Derives the shim's `serde::Serialize` (a `to_value` implementation).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the shim's `serde::Deserialize` (a `from_value` implementation).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("literal parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips any number of outer attributes (`#[...]`), including doc comments.
fn skip_attrs(it: &mut TokenIter) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next();
        // `#![...]` (inner) or `#[...]` (outer): consume the optional `!`
        // and the bracket group.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '!' {
                it.next();
            }
        }
        it.next();
    }
}

/// Skips a `pub` / `pub(...)` visibility modifier if present.
fn skip_vis(it: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!(
            "serde shim derive: expected {what}, found {other:?}"
        )),
    }
}

/// Consumes tokens of a type (or discriminant) expression up to and
/// including the next top-level comma. Tracks `<`/`>` depth so commas
/// inside generic arguments do not terminate the scan; commas inside
/// parenthesized/bracketed groups are invisible because groups are single
/// token trees.
fn skip_past_comma(it: &mut TokenIter) {
    let mut angle: i32 = 0;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

/// Parses the contents of a named-field braces group into field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut it);
        if it.peek().is_none() {
            return Ok(fields);
        }
        skip_vis(&mut it);
        let name = expect_ident(&mut it, "a field name")?;
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_past_comma(&mut it);
        fields.push(name);
    }
}

/// Counts the fields of a tuple-struct / tuple-variant parenthesis group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs(&mut it);
        if it.peek().is_none() {
            return count;
        }
        count += 1;
        skip_past_comma(&mut it);
    }
}

/// Parses the contents of an enum's braces group into variants.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut it);
        if it.peek().is_none() {
            return Ok(variants);
        }
        let name = expect_ident(&mut it, "a variant name")?;
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                it.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        skip_past_comma(&mut it);
        variants.push(Variant { name, shape });
    }
}

fn parse_input(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`")?;
    if kw != "struct" && kw != "enum" {
        return Err(format!(
            "serde shim derive: only structs and enums are supported, found `{kw}`"
        ));
    }
    let name = expect_ident(&mut it, "the type name")?;
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported; \
                 write a manual impl or extend shims/serde_derive"
            ));
        }
    }
    let kind = if kw == "enum" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => {
                return Err(format!(
                    "serde shim derive: expected enum body for `{name}`, found {other:?}"
                ))
            }
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => {
                return Err(format!(
                    "serde shim derive: expected struct body for `{name}`, found {other:?}"
                ))
            }
        }
    };
    Ok(Item { name, kind })
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut pairs = String::new();
            for f in fields {
                let _ = write!(
                    pairs,
                    "(::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(items, "::serde::Serialize::to_value(&self.{i}),");
            }
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            arms,
                            "Self::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        );
                    }
                    Shape::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "Self::{vn}(__f0) => ::serde::Value::tagged({vn:?}, \
                             ::serde::Serialize::to_value(__f0)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut items = String::new();
                        for b in &binds {
                            let _ = write!(items, "::serde::Serialize::to_value({b}),");
                        }
                        let _ = write!(
                            arms,
                            "Self::{vn}({}) => ::serde::Value::tagged({vn:?}, \
                             ::serde::Value::Array(::std::vec![{items}])),",
                            binds.join(",")
                        );
                    }
                    Shape::Named(fields) => {
                        let mut pairs = String::new();
                        for f in fields {
                            let _ = write!(
                                pairs,
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f})),"
                            );
                        }
                        let _ = write!(
                            arms,
                            "Self::{vn} {{ {} }} => ::serde::Value::tagged({vn:?}, \
                             ::serde::Value::Object(::std::vec![{pairs}])),",
                            fields.join(",")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let _ = write!(
                    inits,
                    "{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?,"
                );
            }
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Kind::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Kind::TupleStruct(n) => {
            let mut args = String::new();
            for i in 0..*n {
                let _ = write!(args, "::serde::Deserialize::from_value(&__items[{i}])?,");
            }
            format!(
                "{{ let __items = __v.array_of_len({n})?; \
                 ::std::result::Result::Ok(Self({args})) }}"
            )
        }
        Kind::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            unit_arms,
                            "{vn:?} => ::std::result::Result::Ok(Self::{vn}),"
                        );
                    }
                    Shape::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "{vn:?} => ::std::result::Result::Ok(Self::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let mut args = String::new();
                        for i in 0..*n {
                            let _ =
                                write!(args, "::serde::Deserialize::from_value(&__items[{i}])?,");
                        }
                        let _ = write!(
                            data_arms,
                            "{vn:?} => {{ let __items = __inner.array_of_len({n})?; \
                             ::std::result::Result::Ok(Self::{vn}({args})) }},"
                        );
                    }
                    Shape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let _ = write!(
                                inits,
                                "{f}: ::serde::Deserialize::from_value(\
                                 __inner.field({f:?})?)?,"
                            );
                        }
                        let _ = write!(
                            data_arms,
                            "{vn:?} => ::std::result::Result::Ok(\
                             Self::{vn} {{ {inits} }}),"
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     __tagged => {{\n\
                         let (__tag, __inner) = __tagged.tagged_parts()?;\n\
                         match __tag {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
