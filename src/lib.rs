//! Umbrella crate: see the workspace README. Re-exports the member crates for examples and integration tests.
#![forbid(unsafe_code)]
pub use mppdb_sim;
pub use thrifty;
pub use thrifty_workload;
